// Simulator-throughput bench: simulated word accesses per second.
//
// Every Table II / Theorem bench is bottlenecked by hm::CacheSim, not by
// the algorithms being measured, so regeneration time of the paper's
// results is a direct function of this number.
//
// Methodology (interference-robust on a noisy host):
//
//   1. Each workload's access stream is captured ONCE as a trace -- the raw
//      drivers (seq-read, run-read, part-rw) synthesize theirs, the paper
//      workloads (scan, MO-MT, SPMS sort, I-GEP) record the exact
//      (core, addr, words, write) stream the SimExecutor emits.
//   2. The trace is replayed through the current hm::CacheSim AND through
//      the vendored pre-optimization simulator (bench/baseline_sim.hpp),
//      with repetitions interleaved new/old/new/old in one process, so
//      ambient load perturbs both series equally.  The per-sim statistic is
//      the best of K reps (min time), the standard noise-robust choice for
//      a deterministic computation.  For the paper workloads the baseline
//      replays the UNBATCHED (word-at-a-time) expansion of the trace --
//      that is the stream the pre-PR views actually issued, since run
//      batching ships in the same PR as the simulator; the raw-* rows
//      compare both simulators on the identical call shape.
//   3. Before timing, both simulators' observable counters (misses,
//      evictions, invalidations, ping-pongs) are checked for equality on
//      their respective streams: the speedup only counts if the semantics
//      are identical.  (Counter equality across the batched/unbatched pair
//      is exactly the run-batching exactness claim of DESIGN.md.)
//
// The throughput numerator is simulated WORDS (sum of `words` over the
// trace), which is invariant to how the stream is chopped into calls; the
// "speedup" column is the like-for-like ratio the tentpole targets.  The
// stack-* rows additionally time the workloads end-to-end through the full
// SimExecutor stack (algorithm + scheduler + simulator), which is the cost
// the actual benches pay; they have no baseline counterpart in-process.
// PR 6 adds the sharded replay engine (hm/psim.hpp) to the comparison:
// every captured trace is additionally replayed through ShardedCacheSim
// ("psim-" rows, threads column > 1 on multi-core hosts), with the serial
// and sharded cells of each repetition run back-to-back in alternating
// order so ambient drift cancels out of their ratio.  `--threads=N`
// overrides the engine's worker count; `--psim-off-check` is the
// single-thread overhead guardrail (ctest: bench_simrate_psim_off_check).
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "algo/gep.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "bench/baseline_sim.hpp"
#include "bench/common.hpp"
#include "hm/cache_sim.hpp"
#include "hm/config.hpp"
#include "hm/psim.hpp"
#include "hm/trace.hpp"
#include "sched/sim_executor.hpp"
#include "sched/views.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

int g_reps = 9;       // dropped to 2 under --smoke
unsigned g_threads = 0;  // --threads=N; 0 = engine default (env/host cores)

using Trace = std::vector<sched::TraceEntry>;

std::uint64_t trace_words(const Trace& t) {
  std::uint64_t w = 0;
  for (const auto& e : t) w += e.words > 0 ? e.words : 1;
  return w;
}

template <class Sim>
void replay(Sim& sim, const Trace& t) {
  sim.clear();
  for (const auto& e : t) sim.access(e.core, e.addr, e.words, e.write != 0);
}

/// Word-at-a-time expansion of a trace: every k-word range access becomes k
/// single-word accesses in address order.  All view element types here are
/// one word wide, so this is exactly the stream the pre-PR (unbatched)
/// SimRef layer issued for the same workload.
Trace unbatch(const Trace& t) {
  Trace out;
  out.reserve(t.size());
  for (const auto& e : t) {
    const std::uint32_t k = e.words > 0 ? e.words : 1;
    for (std::uint32_t w = 0; w < k; ++w) {
      out.push_back({e.addr + w, 1, e.core, e.write});
    }
  }
  return out;
}

/// Golden-set counter parity between the optimized simulator (on the
/// captured trace) and the baseline simulator (on its replay stream);
/// aborts the bench on any mismatch.
void check_parity(const hm::MachineConfig& cfg, const Trace& t,
                  const Trace& t_base, const std::string& name) {
  hm::CacheSim now(cfg);
  bench::BaselineCacheSim then(cfg);
  replay(now, t);
  replay(then, t_base);
  bool ok = now.pingpong_events() == then.pingpong_events();
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    for (std::uint32_t i = 0; i < cfg.caches_at(lvl); ++i) {
      const auto& a = now.counters(lvl, i);
      const auto& b = then.counters(lvl, i);
      ok = ok && a.misses == b.misses && a.evictions == b.evictions &&
           a.invalidations == b.invalidations;
    }
  }
  if (!ok) {
    std::cerr << "FATAL: counter mismatch vs baseline simulator on " << name
              << " / " << cfg.name() << "\n";
    std::exit(1);
  }
}

/// Parity gate for the sharded replay engine: before a psim- row's rate
/// means anything, its counters on the trace must be identical to a plain
/// serial replay (the engine's whole claim is bit-exactness).
void check_psim_parity(const hm::MachineConfig& cfg, const Trace& t,
                       unsigned threads, const std::string& name) {
  hm::CacheSim serial(cfg);
  replay(serial, t);
  hm::CacheSim sim(cfg);
  hm::ShardedCacheSim engine(sim, threads);
  engine.replay(t.data(), t.size());
  bool ok = serial.pingpong_events() == sim.pingpong_events() &&
            serial.total_accesses() == sim.total_accesses();
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    for (std::uint32_t i = 0; i < cfg.caches_at(lvl); ++i) {
      const auto& a = serial.counters(lvl, i);
      const auto& b = sim.counters(lvl, i);
      ok = ok && a.hits == b.hits && a.misses == b.misses &&
           a.evictions == b.evictions && a.invalidations == b.invalidations;
    }
  }
  if (!ok) {
    std::cerr << "FATAL: sharded replay counter mismatch vs serial on "
              << name << " / " << cfg.name() << " (threads=" << threads
              << ")\n";
    std::exit(1);
  }
}

struct Row {
  std::string bench;
  hm::MachineConfig cfg;
  std::uint64_t n = 0;
  Trace trace;               ///< empty for stack-* rows
  Trace trace_base;          ///< baseline replay stream (empty: use `trace`)
  std::function<std::uint64_t()> stack_run;  ///< stack-* rows only
  std::vector<double> ns_new, ns_base, ns_psim;
  std::uint64_t words = 0;
};

std::vector<Row> plan;

/// `pre_pr_stream` selects the baseline's replay stream: the word-at-a-time
/// expansion for view-captured workload traces (what the unbatched pre-PR
/// views issued), or the identical trace for the raw call-shape rows.
void add_trace(std::string bench, const hm::MachineConfig& cfg,
               std::uint64_t n, Trace t, bool pre_pr_stream = false) {
  Row r;
  r.bench = std::move(bench);
  r.cfg = cfg;
  r.n = n;
  r.words = trace_words(t);
  if (pre_pr_stream) {
    r.trace_base = unbatch(t);
    assert(trace_words(r.trace_base) == r.words);
  }
  r.trace = std::move(t);
  plan.push_back(std::move(r));
}

// ---- Raw trace generators -------------------------------------------------

/// Sequential word-at-a-time read scan by core 0, the common case the L0
/// filter targets.
Trace make_seq(std::uint64_t n) {
  Trace t;
  t.reserve(n);
  for (std::uint64_t a = 0; a < n; ++a) t.push_back({a, 1, 0, 0});
  return t;
}

/// The same scan issued as 512-word batched range accesses (the shape
/// SimRef::load_run / executor copy produce).
Trace make_run(std::uint64_t n) {
  Trace t;
  t.reserve(n / 512);
  for (std::uint64_t a = 0; a < n; a += 512) t.push_back({a, 512, 0, 0});
  return t;
}

/// All cores scan disjoint partitions, writing every 4th word: exercises
/// the sharer table and the write fast path without ping-ponging.
Trace make_part(const hm::MachineConfig& cfg, std::uint64_t n) {
  Trace t;
  t.reserve(n);
  const std::uint32_t p = cfg.cores();
  const std::uint64_t per = n / p;
  for (std::uint32_t c = 0; c < p; ++c) {
    for (std::uint64_t a = 0; a < per; ++a) {
      t.push_back({c * per + a, 1, static_cast<std::uint8_t>(c),
                   static_cast<std::uint8_t>((a & 3) == 0)});
    }
  }
  return t;
}

// ---- Workload trace capture + stack rows ----------------------------------

void add_stack(std::string bench, const hm::MachineConfig& cfg,
               std::uint64_t n, std::function<std::uint64_t()> run) {
  Row r;
  r.bench = "stack-" + bench;
  r.cfg = cfg;
  r.n = n;
  r.stack_run = std::move(run);
  r.words = r.stack_run();  // warm-up; also fixes the numerator
  plan.push_back(std::move(r));
}

void add_scan(const hm::MachineConfig& cfg, std::uint64_t n) {
  auto ex = std::make_shared<sched::SimExecutor>(cfg);
  auto buf = std::make_shared<sched::SimBuf<std::int64_t>>(
      ex->make_buf<std::int64_t>(n));
  auto rep = [ex, buf, n] {
    for (std::size_t i = 0; i < n; ++i) buf->raw()[i] = std::int64_t(i & 7);
    ex->run(2 * n, [&] { algo::mo_prefix_sum(*ex, buf->ref()); });
    return ex->cache_sim().total_accesses();
  };
  Trace t;
  ex->set_trace(&t);
  rep();
  ex->set_trace(nullptr);
  add_trace("scan", cfg, n, std::move(t), /*pre_pr_stream=*/true);
  add_stack("scan", cfg, n, rep);
}

void add_transpose(const hm::MachineConfig& cfg, std::uint64_t n) {
  auto ex = std::make_shared<sched::SimExecutor>(cfg);
  auto a =
      std::make_shared<sched::SimBuf<double>>(ex->make_buf<double>(n * n));
  auto out =
      std::make_shared<sched::SimBuf<double>>(ex->make_buf<double>(n * n));
  for (std::size_t i = 0; i < n * n; ++i) a->raw()[i] = double(i);
  auto rep = [ex, a, out, n] {
    ex->run(3 * n * n,
            [&] { algo::mo_transpose(*ex, a->ref(), out->ref(), n); });
    return ex->cache_sim().total_accesses();
  };
  Trace t;
  ex->set_trace(&t);
  rep();
  ex->set_trace(nullptr);
  add_trace("mo-mt", cfg, n, std::move(t), /*pre_pr_stream=*/true);
  add_stack("mo-mt", cfg, n, rep);
}

void add_sort(const hm::MachineConfig& cfg, std::uint64_t n) {
  auto ex = std::make_shared<sched::SimExecutor>(cfg);
  auto buf = std::make_shared<sched::SimBuf<std::uint64_t>>(
      ex->make_buf<std::uint64_t>(n));
  auto rep = [ex, buf, n] {
    util::Xoshiro256 rng(4242);
    for (auto& v : buf->raw()) v = rng();
    ex->run(4 * n, [&] { algo::spms_sort(*ex, buf->ref()); });
    return ex->cache_sim().total_accesses();
  };
  Trace t;
  ex->set_trace(&t);
  rep();
  ex->set_trace(nullptr);
  add_trace("spms-sort", cfg, n, std::move(t), /*pre_pr_stream=*/true);
  add_stack("spms-sort", cfg, n, rep);
}

void add_gep(const hm::MachineConfig& cfg, std::uint64_t n) {
  auto ex = std::make_shared<sched::SimExecutor>(cfg);
  auto buf =
      std::make_shared<sched::SimBuf<double>>(ex->make_buf<double>(n * n));
  auto rep = [ex, buf, n] {
    util::Xoshiro256 rng(7);
    for (auto& v : buf->raw()) v = rng.uniform();
    using Mat = sched::MatView<sched::SimRef<double>>;
    ex->run(n * n, [&] {
      algo::igep<algo::FloydWarshallInstance>(*ex,
                                              Mat::full(buf->ref(), n, n));
    });
    return ex->cache_sim().total_accesses();
  };
  Trace t;
  ex->set_trace(&t);
  rep();
  ex->set_trace(nullptr);
  add_trace("igep", cfg, n, std::move(t), /*pre_pr_stream=*/true);
  add_stack("igep", cfg, n, rep);
}

// ---- --psim-off-check: single-thread engine overhead guardrail ------------

/// A scan workload's exact executor-emitted access stream, for overhead
/// measurement on a construct-realistic trace (epoch cuts, run batches).
Trace capture_scan_trace(const hm::MachineConfig& cfg, std::uint64_t n) {
  sched::SimExecutor ex(cfg);
  bench::trace_attach(ex);
  auto buf = ex.make_buf<std::int64_t>(n);
  Trace t;
  ex.set_trace(&t);
  for (std::size_t i = 0; i < n; ++i) buf.raw()[i] = std::int64_t(i & 7);
  ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
  ex.set_trace(nullptr);
  return t;
}

/// `--psim-off-check` mode: the guardrail for the sharded replay engine.
/// With one worker the engine skips epoch analysis entirely and degrades
/// to buffer-then-serial-replay, so its cost over a direct serial replay
/// is just the buffering -- the state every run on a single-core host is
/// in, which must stay within the 5% budget (ISSUE 6) for `kAuto` to be a
/// safe default.
///
/// Statistics mirror bench_wallclock --fault-off-check: per repetition the
/// serial / serial / engine cells run back-to-back (order alternating),
/// and the within-rep *ratio* is aggregated -- paired runs share the same
/// interference window, so host drift divides out.  Both ratios compare
/// cells adjacent to the shared middle cell; the A/A median is the
/// pairing-noise floor.  Gate (full mode only):
/// overhead <= max(5%, A/A + 1%).  Smoke measures and prints but does not
/// gate.
int psim_off_check(bool smoke, int reps) {
  bench::print_header("sharded replay engine overhead at 1 worker");
  std::printf("host hardware_concurrency = %u, gate %s\n",
              bench::host_concurrency(),
              smoke ? "off (smoke)" : "on (<= max(5%, A/A noise + 1%))");
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  const std::uint64_t raw_n = smoke ? 1u << 16 : 1u << 20;
  struct Case {
    std::string name;
    Trace trace;
  };
  const Case cases[] = {
      {"raw-seq-read", make_seq(raw_n)},
      {"raw-part-rw", make_part(cfg, raw_n)},
      {"scan-trace", capture_scan_trace(cfg, smoke ? 1u << 12 : 1u << 16)},
  };
  util::Table t({"trace", "serial ns", "A/A noise", "engine ns", "overhead"});
  bool gate_ok = true;
  struct Measurement {
    double best_off, best_on, noise_pct, over_pct;
  };
  auto measure = [&](const Case& c) {
    hm::CacheSim serial_sim(cfg);
    hm::CacheSim engine_sim(cfg);
    hm::ShardedCacheSim engine(engine_sim, /*threads=*/1);
    auto run_serial = [&] { replay(serial_sim, c.trace); };
    auto run_engine = [&] {
      engine_sim.clear();
      engine.replay(c.trace.data(), c.trace.size());
    };
    run_serial();  // warm-up
    run_engine();
    std::vector<double> over_ratios, noise_ratios;
    double best_off = 0, best_on = 0;
    for (int r = 0; r < reps; ++r) {
      double a, a2, b;
      if (r % 2 == 0) {
        a = bench::time_once_ns(run_serial);
        a2 = bench::time_once_ns(run_serial);
        b = bench::time_once_ns(run_engine);
      } else {
        b = bench::time_once_ns(run_engine);
        a2 = bench::time_once_ns(run_serial);
        a = bench::time_once_ns(run_serial);
      }
      over_ratios.push_back(b / a2);
      noise_ratios.push_back(a / a2);
      const double off = std::min(a, a2);
      if (r == 0 || off < best_off) best_off = off;
      if (r == 0 || b < best_on) best_on = b;
    }
    auto median = [](std::vector<double> v) {
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    return Measurement{best_off, best_on,
                       100.0 * std::abs(median(noise_ratios) - 1.0),
                       100.0 * (median(over_ratios) - 1.0)};
  };
  auto within = [smoke](const Measurement& m) {
    return smoke || m.over_pct <= std::max(5.0, m.noise_pct + 1.0);
  };
  for (const auto& c : cases) {
    Measurement m = measure(c);
    bool ok = within(m);
    if (!ok) {
      // Confirm before failing: a real buffering regression reproduces; a
      // host-load resonance artifact does not.
      m = measure(c);
      ok = within(m);
    }
    gate_ok = gate_ok && ok;
    t.add_row({c.name + (ok ? "" : "  <-- FAIL"),
               util::Table::fmt(m.best_off, "%.0f"),
               util::Table::fmt(m.noise_pct, "%.2f%%"),
               util::Table::fmt(m.best_on, "%.0f"),
               util::Table::fmt(m.over_pct, "%+.2f%%")});
  }
  t.print(std::cout);
  if (!gate_ok) {
    std::printf("\nFAIL: 1-worker sharded replay exceeds the 5%% budget\n");
    return 1;
  }
  std::printf("\nOK: 1-worker sharded replay within budget\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bool psim_check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--psim-off-check") psim_check = true;
    if (arg.rfind("--threads=", 0) == 0) {
      g_threads = static_cast<unsigned>(
          std::strtoul(arg.data() + 10, nullptr, 10));
    }
  }
  if (psim_check) return psim_off_check(smoke, smoke ? 3 : 15);
  if (smoke) g_reps = 2;
  bench::print_header("Simulator throughput (simulated word accesses/sec)");
  const unsigned psim_threads =
      g_threads != 0 ? g_threads : hm::psim_threads_from_env();
  std::cout << "host hardware_concurrency = " << bench::host_concurrency()
            << ", pinned = " << (bench::threads_pinned() ? "yes" : "no")
            << ", psim default mode = "
            << (hm::resolve_psim_mode(hm::PsimMode::kAuto) ==
                        hm::PsimMode::kSharded
                    ? "sharded"
                    : "serial")
            << ", psim- rows at threads = " << psim_threads
            << " (capped per machine config)\n";
  const std::uint64_t raw_n = smoke ? 1u << 16 : 1u << 20;
  const hm::MachineConfig cfgs[] = {hm::MachineConfig::shared_l2(4),
                                    hm::MachineConfig::figure1()};
  for (const auto& cfg : cfgs) {
    bench::print_machine(cfg);
    add_trace("raw-seq-read", cfg, raw_n, make_seq(raw_n));
    add_trace("raw-run-read", cfg, raw_n, make_run(raw_n));
    add_trace("raw-part-rw", cfg, raw_n, make_part(cfg, raw_n));
    add_scan(cfg, smoke ? 1u << 12 : 1u << 16);
    add_transpose(cfg, smoke ? 32 : 128);
    add_sort(cfg, smoke ? 1u << 10 : 1u << 14);
    add_gep(cfg, smoke ? 32 : 64);
  }

  // Counter-parity gates: the speedup claims only stand on identical
  // semantics -- vs the vendored baseline AND vs the sharded replay engine.
  for (const auto& r : plan) {
    if (!r.trace.empty()) {
      check_parity(r.cfg, r.trace,
                   r.trace_base.empty() ? r.trace : r.trace_base, r.bench);
      check_psim_parity(r.cfg, r.trace, psim_threads, r.bench);
    }
  }

  // Timed phase.  Reps of every row are interleaved (rep r of all rows
  // before rep r+1 of any); within a replay row the baseline and the
  // current simulator alternate back-to-back, and the serial / sharded
  // cells additionally alternate their order by rep parity so neither
  // systematically inherits the tail of a load burst.
  std::vector<std::unique_ptr<hm::CacheSim>> sims_new;
  std::vector<std::unique_ptr<bench::BaselineCacheSim>> sims_base;
  std::vector<std::unique_ptr<hm::CacheSim>> sims_psim;
  std::vector<std::unique_ptr<hm::ShardedCacheSim>> engines;
  for (const auto& r : plan) {
    const bool has_trace = !r.trace.empty();
    sims_new.push_back(has_trace ? std::make_unique<hm::CacheSim>(r.cfg)
                                 : nullptr);
    sims_base.push_back(
        has_trace ? std::make_unique<bench::BaselineCacheSim>(r.cfg)
                  : nullptr);
    sims_psim.push_back(has_trace ? std::make_unique<hm::CacheSim>(r.cfg)
                                  : nullptr);
    engines.push_back(has_trace ? std::make_unique<hm::ShardedCacheSim>(
                                      *sims_psim.back(), psim_threads)
                                : nullptr);
  }
  for (int r = 0; r < g_reps; ++r) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      Row& row = plan[i];
      if (row.trace.empty()) {
        row.ns_new.push_back(bench::time_once_ns([&] { row.stack_run(); }));
        continue;
      }
      const Trace& tb = row.trace_base.empty() ? row.trace : row.trace_base;
      row.ns_base.push_back(
          bench::time_once_ns([&] { replay(*sims_base[i], tb); }));
      auto serial_cell = [&] {
        row.ns_new.push_back(
            bench::time_once_ns([&] { replay(*sims_new[i], row.trace); }));
      };
      auto psim_cell = [&] {
        row.ns_psim.push_back(bench::time_once_ns([&] {
          sims_psim[i]->clear();
          engines[i]->replay(row.trace.data(), row.trace.size());
        }));
      };
      if (r % 2 == 0) {
        serial_cell();
        psim_cell();
      } else {
        psim_cell();
        serial_cell();
      }
    }
  }

  bench::SimRateRecorder rec("BENCH_simrate.json");
  util::Table t({"bench", "config", "n", "words", "base Macc/s", "new Macc/s",
                 "speedup", "psim Macc/s", "T", "psim/serial"});
  double logsum = 0, logsum_mo = 0, logsum_psim = 0;
  int cnt = 0, cnt_mo = 0, cnt_psim = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    Row& row = plan[i];
    const double best_new = *std::min_element(row.ns_new.begin(),
                                              row.ns_new.end());
    const double rate_new = double(row.words) / (best_new * 1e-9);
    double rate_base = 0, speedup = 0;
    if (!row.ns_base.empty()) {
      const double best_base = *std::min_element(row.ns_base.begin(),
                                                 row.ns_base.end());
      rate_base = double(row.words) / (best_base * 1e-9);
      speedup = rate_new / rate_base;
      logsum += std::log(speedup);
      ++cnt;
      if (row.bench != "raw-seq-read" && row.bench != "raw-run-read" &&
          row.bench != "raw-part-rw") {
        logsum_mo += std::log(speedup);
        ++cnt_mo;
      }
    }
    rec.add(row.bench, row.cfg.name(), row.n, row.words, rate_new, rate_base,
            speedup, g_reps);
    double rate_psim = 0, psim_speedup = 0;
    unsigned engine_threads = 0;
    if (!row.ns_psim.empty()) {
      const double best_psim = *std::min_element(row.ns_psim.begin(),
                                                 row.ns_psim.end());
      rate_psim = double(row.words) / (best_psim * 1e-9);
      // The psim row's baseline is the CURRENT serial simulator on the
      // same trace (not the vendored one): the column answers "what does
      // the parallel engine buy over serial replay today".
      psim_speedup = rate_psim / rate_new;
      engine_threads = engines[i]->threads();
      logsum_psim += std::log(psim_speedup);
      ++cnt_psim;
      rec.add("psim-" + row.bench, row.cfg.name(), row.n, row.words,
              rate_psim, rate_new, psim_speedup, g_reps, engine_threads);
    }
    t.add_row({row.bench, row.cfg.name(), std::to_string(row.n),
               std::to_string(row.words),
               rate_base > 0 ? util::Table::fmt(rate_base / 1e6, "%.2f") : "-",
               util::Table::fmt(rate_new / 1e6, "%.2f"),
               speedup > 0 ? util::Table::fmt(speedup, "%.2fx") : "-",
               rate_psim > 0 ? util::Table::fmt(rate_psim / 1e6, "%.2f") : "-",
               engine_threads > 0 ? std::to_string(engine_threads) : "-",
               psim_speedup > 0 ? util::Table::fmt(psim_speedup, "%.2fx")
                                : "-"});
  }
  t.print(std::cout);
  std::cout << "counter parity vs baseline simulator AND vs sharded replay "
               "engine: OK on all traces\n";
  std::cout << "geomean replay speedup: all "
            << util::Table::fmt(std::exp(logsum / cnt), "%.2f")
            << "x, Table-II workloads "
            << util::Table::fmt(std::exp(logsum_mo / cnt_mo), "%.2f") << "x\n";
  if (cnt_psim > 0) {
    std::cout << "geomean sharded-vs-serial replay: "
              << util::Table::fmt(std::exp(logsum_psim / cnt_psim), "%.2f")
              << "x at " << psim_threads
              << " requested thread(s) (expect < 1x when the host or the "
                 "request is single-threaded: same path plus buffering)\n";
  }
  rec.write();
  return 0;
}
