// Serving-layer benchmark: open-loop latency under load + the serving
// overhead guardrail.
//
// Default mode drives obliv::serve::Server with an open-loop traffic
// generator: job arrival times are fixed in advance (t_i = i / QPS,
// submitted by a clock, never by completions), so when the server falls
// behind, queueing delay shows up in the measured latency instead of
// silently throttling the offered load -- the standard way to expose tail
// latency that closed-loop generators hide.  Job sizes are heavy-tailed
// (bounded Pareto), families mixed, everything seeded.  Per-QPS-point
// results (p50/p99/p999 latency, goodput) land in BENCH_serve.json, plus
// one record for the measured single-job serving overhead, via the shared
// bench::write_json_env_header() preamble.
//
// `--serve-off-check` is the CI guardrail: serving a single job through
// submit/admission/fork/complete must cost <= 5% over invoking the same
// algorithm directly on a NativeExecutor.  Same paired-ratio statistics as
// bench_wallclock's --fault-off-check: per repetition the direct / direct
// / served cells run back-to-back with alternating order, ratios aggregate
// by median so host drift divides out, A/A measures the residual pairing
// noise, gate overhead <= max(5%, A/A + 1%), one confirming re-measure
// before failing.  `--smoke` measures and prints but does not gate.
//
// On a 1-core container the numbers show serving overhead and queueing,
// not parallel speedup; BENCH_serve.json records hardware_concurrency so
// rows from different hosts are never compared as like-for-like.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "algo/fft.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "common.hpp"
#include "obs/trace.hpp"
#include "sched/cancel.hpp"
#include "sched/native_executor.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace obliv {
namespace {

using Clock = std::chrono::steady_clock;
using sched::NatRef;

template <class T>
NatRef<T> ref_of(std::vector<T>& v) {
  return NatRef<T>(v.data(), v.size());
}

// ---------------------------------------------------------------------------
// BENCH_serve.json
// ---------------------------------------------------------------------------

struct ServeRecord {
  std::string bench;      ///< "serve:openloop", "serve:cancel", "serve:shed",
                          ///< "serve:off_check", "serve:cancel_off_check"
  unsigned threads = 0;
  double qps = 0;         ///< offered load (0 for the off_check rows)
  std::uint64_t jobs = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;  ///< cancel row: jobs poisoned mid-flight
  std::uint64_t shed = 0;       ///< shed row: admissions refused by overload
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;  ///< over ok jobs only
  double goodput_jps = 0;  ///< completed_ok / wall seconds
  double overhead_pct = 0; ///< off_check rows: wrapped vs direct
  double noise_pct = 0;    ///< off_check rows: A/A pairing noise
};

class ServeRecorder {
 public:
  ServeRecorder(std::string path, std::uint64_t seed)
      : path_(std::move(path)), seed_(seed) {}

  void add(ServeRecord r) { records_.push_back(std::move(r)); }

  bool write() const {
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "warning: cannot write " << path_ << "\n";
      return false;
    }
    bench::write_json_env_header(out);
    // Generator seed in the header (not per record): one seed drives every
    // open-loop row of a run -- the reproduction knob, same convention as
    // OBLIV_FAULT_SEED for the fault fuzzer.
    out << "  \"seed\": " << seed_ << ",\n";
    out << "  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const ServeRecord& r = records_[i];
      out << "    {\"bench\": \"" << r.bench
          << "\", \"threads\": " << r.threads
          << ", \"qps\": " << util::Table::fmt(r.qps, "%.0f")
          << ", \"jobs\": " << r.jobs
          << ", \"completed_ok\": " << r.completed_ok
          << ", \"rejected\": " << r.rejected
          << ", \"cancelled\": " << r.cancelled
          << ", \"shed\": " << r.shed
          << ", \"p50_ms\": " << util::Table::fmt(r.p50_ms, "%.3f")
          << ", \"p99_ms\": " << util::Table::fmt(r.p99_ms, "%.3f")
          << ", \"p999_ms\": " << util::Table::fmt(r.p999_ms, "%.3f")
          << ", \"goodput_jps\": " << util::Table::fmt(r.goodput_jps, "%.1f")
          << ", \"overhead_pct\": " << util::Table::fmt(r.overhead_pct, "%.2f")
          << ", \"noise_pct\": " << util::Table::fmt(r.noise_pct, "%.2f")
          << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path_ << " (" << records_.size()
              << " records, git_rev=" << bench::git_rev() << ")\n";
    return true;
  }

 private:
  std::string path_;
  std::uint64_t seed_;
  std::vector<ServeRecord> records_;
};

// ---------------------------------------------------------------------------
// Open-loop traffic generation
// ---------------------------------------------------------------------------

/// One generated job: owned buffers + its typed request.  Buffers are
/// allocated and filled before the timed schedule starts, so generation
/// cost never pollutes the latency measurement.
struct GenJob {
  serve::Family family = serve::Family::kSort;
  std::vector<std::int64_t> i64;
  std::vector<std::uint64_t> u64;
  std::vector<algo::cplx> cx;
  std::vector<double> t_in, t_out;
  std::uint64_t side = 0;
  serve::JobHandle handle;

  serve::Request request() {
    switch (family) {
      case serve::Family::kScan: return serve::ScanRequest{ref_of(i64)};
      case serve::Family::kSort: return serve::SortRequest{ref_of(u64)};
      case serve::Family::kFft: return serve::FftRequest{ref_of(cx)};
      default:
        return serve::TransposeRequest{ref_of(t_in), ref_of(t_out), side};
    }
  }
};

/// Bounded Pareto sample in [lo, hi] (alpha ~ 1.3: most jobs small, a
/// heavy tail of large ones -- the canonical serving size distribution).
std::uint64_t pareto_size(util::Xoshiro256& rng, std::uint64_t lo,
                          std::uint64_t hi) {
  const double alpha = 1.3;
  const double u = std::max(rng.uniform(), 1e-12);
  const double v = double(lo) / std::pow(u, 1.0 / alpha);
  return std::min<std::uint64_t>(hi, std::max<std::uint64_t>(
                                         lo, std::uint64_t(v)));
}

GenJob generate_job(util::Xoshiro256& rng) {
  GenJob j;
  const std::uint64_t pick = rng.below(100);
  if (pick < 40) {  // 40% sort
    j.family = serve::Family::kSort;
    j.u64.resize(pareto_size(rng, 256, 16384));
    for (auto& x : j.u64) x = rng();
  } else if (pick < 70) {  // 30% scan
    j.family = serve::Family::kScan;
    j.i64.resize(pareto_size(rng, 512, 32768));
    for (auto& x : j.i64) x = std::int64_t(rng.below(1000)) - 500;
  } else if (pick < 85) {  // 15% FFT, power-of-two sizes
    j.family = serve::Family::kFft;
    j.cx.resize(std::uint64_t(1) << (8 + rng.below(5)));  // 256..4096
    for (auto& x : j.cx) x = algo::cplx(rng.uniform() - 0.5, rng.uniform());
  } else {  // 15% transpose, power-of-two sides
    j.family = serve::Family::kTranspose;
    j.side = std::uint64_t(1) << (3 + rng.below(4));  // 8..64
    j.t_in.resize(j.side * j.side);
    for (auto& x : j.t_in) x = rng.uniform();
    j.t_out.assign(j.side * j.side, 0.0);
  }
  return j;
}

double pct_ms(std::vector<double>& lat_ns, double p) {
  if (lat_ns.empty()) return 0;
  std::sort(lat_ns.begin(), lat_ns.end());
  const std::size_t idx = std::min(
      lat_ns.size() - 1,
      std::size_t(std::ceil(p / 100.0 * double(lat_ns.size())) - 1));
  return lat_ns[idx] / 1e6;
}

/// Knobs for the PR 10 rows: client-side cancellation pressure and
/// server-side overload shedding layered onto the open-loop schedule.
struct LoadShape {
  std::uint64_t cancel_every = 0;      ///< cancel every k-th job (0 = off)
  std::uint64_t shed_wait_p99_ns = 0;  ///< ServerOptions::shed_wait_p99_ns
};

/// One open-loop point: `jobs` requests offered at `qps`, latencies from
/// *scheduled* submit time to observed completion.  Completions are
/// observed by a collector thread waiting handles in submit order; with
/// FIFO head-only admission jobs complete nearly in order, so the
/// observation error is bounded by one job's service time.  Percentiles
/// cover ok jobs only -- cancelled / condemned jobs complete early and
/// would flatter the tail.
ServeRecord run_open_loop(unsigned threads, double qps, std::size_t jobs,
                          std::uint64_t seed, obs::Tracer* tracer = nullptr,
                          const LoadShape& shape = {}) {
  util::Xoshiro256 rng(seed);
  std::vector<GenJob> gen;
  gen.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) gen.push_back(generate_job(rng));

  serve::ServerOptions o;
  o.threads = threads;
  o.queue_capacity = jobs;  // rejections would hide queueing in the tail
  o.shed_wait_p99_ns = shape.shed_wait_p99_ns;
  serve::Server srv(o);
  if (tracer != nullptr) srv.set_tracer(tracer);

  std::vector<double> lat_ns(jobs, 0.0);
  std::vector<Clock::time_point> sched(jobs);
  const auto t0 = Clock::now() + std::chrono::milliseconds(5);
  for (std::size_t i = 0; i < jobs; ++i) {
    sched[i] = t0 + std::chrono::nanoseconds(
                        std::uint64_t(double(i) * 1e9 / qps));
  }

  // Collector: timestamps completions in submit order, concurrently with
  // the submit loop (waiting at the end would misread early completions).
  // `submitted` is the publish point for gen[i].handle.
  std::atomic<std::size_t> submitted{0};
  std::vector<std::uint8_t> finished_ok(jobs, 0);
  std::thread collector([&] {
    for (std::size_t i = 0; i < jobs; ++i) {
      while (submitted.load(std::memory_order_acquire) <= i) {
        std::this_thread::yield();
      }
      if (!gen[i].handle.valid()) continue;  // rejected or shed at submit
      finished_ok[i] = gen[i].handle.wait().ok() ? 1 : 0;
      lat_ns[i] = double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - sched[i])
                             .count());
    }
  });

  for (std::size_t i = 0; i < jobs; ++i) {
    std::this_thread::sleep_until(sched[i]);
    auto r = srv.submit(gen[i].request());
    if (r.ok()) gen[i].handle = r.value();  // refusals land in stats()
    submitted.store(i + 1, std::memory_order_release);
    // Client-side cancellation pressure: poison every k-th job right
    // after submit, while it is still queued or freshly running.  (A
    // deferred canceller thread loses every race on a fast host -- these
    // jobs finish in ~0.1 ms -- and the row degenerates to openloop.)
    if (shape.cancel_every > 0 && gen[i].handle.valid() &&
        (i + 1) % shape.cancel_every == 0) {
      gen[i].handle.cancel();
    }
  }
  collector.join();
  const auto t_end = Clock::now();
  srv.shutdown();

  const serve::ServerStats st = srv.stats();
  std::vector<double> lat;
  lat.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    if (gen[i].handle.valid() && finished_ok[i]) lat.push_back(lat_ns[i]);
  }
  const double wall_s =
      double(std::chrono::duration_cast<std::chrono::nanoseconds>(t_end - t0)
                 .count()) /
      1e9;

  ServeRecord rec;
  rec.bench = shape.cancel_every > 0       ? "serve:cancel"
              : shape.shed_wait_p99_ns > 0 ? "serve:shed"
                                           : "serve:openloop";
  rec.threads = srv.threads();
  rec.qps = qps;
  rec.jobs = jobs;
  rec.completed_ok = st.completed_ok;
  // Disjoint refusal classes: `rejected` is queue-capacity, `shed` is the
  // overload controller.
  rec.rejected = st.rejected;
  rec.cancelled = st.cancelled;
  rec.shed = st.shed;
  rec.p50_ms = pct_ms(lat, 50);
  rec.p99_ms = pct_ms(lat, 99);
  rec.p999_ms = pct_ms(lat, 99.9);
  rec.goodput_jps = wall_s > 0 ? double(st.completed_ok) / wall_s : 0;
  return rec;
}

// ---------------------------------------------------------------------------
// Serving overhead vs direct invocation
// ---------------------------------------------------------------------------

struct Overhead {
  double direct_ns = 0, served_ns = 0, noise_pct = 0, over_pct = 0;
};

/// Paired-ratio measurement of one served sort job vs the same sort run
/// directly on an identically configured executor (see the header
/// comment for the statistics).
Overhead measure_overhead(int reps) {
  const std::size_t n = 1 << 15;
  util::Xoshiro256 rng(4242);
  std::vector<std::uint64_t> keys(n);
  for (auto& x : keys) x = rng();

  serve::ServerOptions o;
  sched::NativeExecutor ex(o.threads, o.sequential_grain_words,
                           sched::SchedMode::kWorkSteal);
  serve::Server srv(o);

  std::vector<std::uint64_t> buf;
  auto direct = [&] {
    buf = keys;
    algo::spms_sort(ex, ref_of(buf));
  };
  auto served = [&] {
    buf = keys;
    auto r = srv.submit(serve::SortRequest{ref_of(buf)});
    if (r.ok()) r.value().wait();
  };
  direct();
  served();  // warm-up both paths

  double best_direct = 0, best_served = 0;
  std::vector<double> over_ratios, noise_ratios;
  for (int r = 0; r < reps; ++r) {
    double a, a2, b;
    if (r % 2 == 0) {
      a = bench::time_once_ns(direct);
      a2 = bench::time_once_ns(direct);
      b = bench::time_once_ns(served);
    } else {
      b = bench::time_once_ns(served);
      a2 = bench::time_once_ns(direct);
      a = bench::time_once_ns(direct);
    }
    over_ratios.push_back(b / a2);
    noise_ratios.push_back(a / a2);
    const double off = std::min(a, a2);
    if (r == 0 || off < best_direct) best_direct = off;
    if (r == 0 || b < best_served) best_served = b;
  }
  auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  Overhead m;
  m.direct_ns = best_direct;
  m.served_ns = best_served;
  m.noise_pct = 100.0 * std::abs(median(noise_ratios) - 1.0);
  m.over_pct = 100.0 * (median(over_ratios) - 1.0);
  return m;
}

void print_overhead(const Overhead& m, bool ok) {
  util::Table t({"path", "best ns/job", "A/A noise", "overhead"});
  t.add_row({"direct", util::Table::fmt(m.direct_ns, "%.0f"), "", ""});
  t.add_row({std::string("served") + (ok ? "" : "  <-- FAIL"),
             util::Table::fmt(m.served_ns, "%.0f"),
             util::Table::fmt(m.noise_pct, "%.2f%%"),
             util::Table::fmt(m.over_pct, "%+.2f%%")});
  t.print(std::cout);
}

/// `--serve-off-check`: gate serving overhead at max(5%, A/A + 1%), with
/// one confirming re-measure before failing (resonance with host load can
/// push a single measurement over; a real regression reproduces).
int serve_off_check(bool smoke, int reps) {
  bench::print_header("serving overhead vs direct invocation");
  std::printf("gate %s\n",
              smoke ? "off (smoke)" : "on (<= max(5%, A/A noise + 1%))");
  auto within = [smoke](const Overhead& m) {
    return smoke || m.over_pct <= std::max(5.0, m.noise_pct + 1.0);
  };
  Overhead m = measure_overhead(reps);
  bool ok = within(m);
  if (!ok) {
    m = measure_overhead(reps);
    ok = within(m);
  }
  print_overhead(m, ok);
  if (!ok) {
    std::printf("\nFAIL: serving overhead exceeds the budget\n");
    return 1;
  }
  std::printf("\nOK: serving overhead within budget\n");
  return 0;
}

/// Paired-ratio measurement of the PR 10 poison-check plumbing on a job
/// that is never cancelled: the same sort, direct on one executor, with
/// and without a live (never-poisoned) CancelToken installed.  Isolates
/// the per-fork/per-anchor token load from the serving-path costs that
/// --serve-off-check already gates.
Overhead measure_cancel_overhead(int reps) {
  const std::size_t n = 1 << 15;
  util::Xoshiro256 rng(4242);
  std::vector<std::uint64_t> keys(n);
  for (auto& x : keys) x = rng();

  serve::ServerOptions o;
  sched::NativeExecutor ex(o.threads, o.sequential_grain_words,
                           sched::SchedMode::kWorkSteal);
  sched::CancelToken token;  // installed but never poisoned

  std::vector<std::uint64_t> buf;
  auto bare = [&] {
    buf = keys;
    algo::spms_sort(ex, ref_of(buf));
  };
  auto guarded = [&] {
    buf = keys;
    sched::ScopedCancelToken guard(&token);
    algo::spms_sort(ex, ref_of(buf));
  };
  bare();
  guarded();  // warm-up both paths

  double best_bare = 0, best_guarded = 0;
  std::vector<double> over_ratios, noise_ratios;
  for (int r = 0; r < reps; ++r) {
    double a, a2, b;
    if (r % 2 == 0) {
      a = bench::time_once_ns(bare);
      a2 = bench::time_once_ns(bare);
      b = bench::time_once_ns(guarded);
    } else {
      b = bench::time_once_ns(guarded);
      a2 = bench::time_once_ns(bare);
      a = bench::time_once_ns(bare);
    }
    over_ratios.push_back(b / a2);
    noise_ratios.push_back(a / a2);
    const double off = std::min(a, a2);
    if (r == 0 || off < best_bare) best_bare = off;
    if (r == 0 || b < best_guarded) best_guarded = b;
  }
  auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  Overhead m;
  m.direct_ns = best_bare;
  m.served_ns = best_guarded;
  m.noise_pct = 100.0 * std::abs(median(noise_ratios) - 1.0);
  m.over_pct = 100.0 * (median(over_ratios) - 1.0);
  return m;
}

/// `--cancel-off-check`: the cancellation plumbing must be free when
/// unused -- gate <= max(5%, A/A + 1%) on uncancelled jobs, same
/// statistics and re-measure policy as --serve-off-check.
int cancel_off_check(bool smoke, int reps) {
  bench::print_header("cancel-token overhead on uncancelled jobs");
  std::printf("gate %s\n",
              smoke ? "off (smoke)" : "on (<= max(5%, A/A noise + 1%))");
  auto within = [smoke](const Overhead& m) {
    return smoke || m.over_pct <= std::max(5.0, m.noise_pct + 1.0);
  };
  Overhead m = measure_cancel_overhead(reps);
  bool ok = within(m);
  if (!ok) {
    m = measure_cancel_overhead(reps);
    ok = within(m);
  }
  util::Table t({"path", "best ns/job", "A/A noise", "overhead"});
  t.add_row({"no token", util::Table::fmt(m.direct_ns, "%.0f"), "", ""});
  t.add_row({std::string("token installed") + (ok ? "" : "  <-- FAIL"),
             util::Table::fmt(m.served_ns, "%.0f"),
             util::Table::fmt(m.noise_pct, "%.2f%%"),
             util::Table::fmt(m.over_pct, "%+.2f%%")});
  t.print(std::cout);
  if (!ok) {
    std::printf("\nFAIL: cancel-check overhead exceeds the budget\n");
    return 1;
  }
  std::printf("\nOK: cancel-check overhead within budget\n");
  return 0;
}

}  // namespace
}  // namespace obliv

int main(int argc, char** argv) {
  const bool smoke = obliv::bench::smoke(argc, argv);
  bool off_check = false, cancel_check = false;
  std::uint64_t seed = 0xD15C0;  // default kept from the PR 9 runs
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--serve-off-check") off_check = true;
    if (arg == "--cancel-off-check") cancel_check = true;
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 0);
    }
  }
  const int reps = smoke ? 5 : 15;
  if (off_check) return obliv::serve_off_check(smoke, reps);
  if (cancel_check) return obliv::cancel_off_check(smoke, reps);

  obliv::bench::print_header("serve: open-loop latency under load");
  std::printf("threads = %u, pinned = %s, seed = 0x%llx%s\n",
              obliv::bench::host_concurrency(),
              obliv::bench::threads_pinned() ? "yes" : "no",
              static_cast<unsigned long long>(seed), smoke ? " (smoke)" : "");

  obliv::ServeRecorder json("BENCH_serve.json", seed);
  const auto qps_points = obliv::bench::sweep<double>(smoke, {100, 400, 800});
  const std::size_t jobs = smoke ? 80 : 600;

  // Unified trace-output contract (--trace-out= / OBLIV_TRACE_OUT): when a
  // path is given the first open-loop point runs with a tracer attached and
  // its job-lane events are exported for `obliv-trace analyze`.
  const std::string trace_out = obliv::obs::resolve_trace_out(argc, argv);
  obliv::obs::Tracer tracer(
      std::max(1u, obliv::bench::host_concurrency()) + 1);

  obliv::util::Table t({"row", "qps", "jobs", "ok", "cancel", "shed",
                        "p50 ms", "p99 ms", "p999 ms", "goodput j/s"});
  auto add_row = [&](const obliv::ServeRecord& r) {
    t.add_row({r.bench.substr(r.bench.find(':') + 1),
               obliv::util::Table::fmt(r.qps, "%.0f"), std::to_string(r.jobs),
               std::to_string(r.completed_ok), std::to_string(r.cancelled),
               std::to_string(r.shed),
               obliv::util::Table::fmt(r.p50_ms, "%.3f"),
               obliv::util::Table::fmt(r.p99_ms, "%.3f"),
               obliv::util::Table::fmt(r.p999_ms, "%.3f"),
               obliv::util::Table::fmt(r.goodput_jps, "%.1f")});
    json.add(r);
  };
  bool traced = false;
  for (double qps : qps_points) {
    obliv::obs::Tracer* tr =
        (!trace_out.empty() && !traced) ? &tracer : nullptr;
    traced = traced || tr != nullptr;
    add_row(obliv::run_open_loop(/*threads=*/0, qps, jobs, seed, tr));
  }

  // PR 10 rows: client cancellation pressure at the highest offered load
  // (every 4th job poisoned at submit, a mix of queued and mid-run), then
  // overload shedding.  The shed row must actually overload the server --
  // at these job sizes capacity is ~10k jobs/s/thread, so it offers 32x
  // the sweep's top rate to keep a standing backlog against the 200 us
  // wait-p99 threshold.  Tails are over surviving ok jobs in both rows.
  const double top_qps = qps_points.back();
  obliv::LoadShape cancel_shape;
  cancel_shape.cancel_every = 4;
  add_row(obliv::run_open_loop(/*threads=*/0, top_qps, jobs, seed, nullptr,
                               cancel_shape));
  obliv::LoadShape shed_shape;
  shed_shape.shed_wait_p99_ns = 200'000;
  add_row(obliv::run_open_loop(/*threads=*/0, top_qps * 32, jobs, seed,
                               nullptr, shed_shape));
  t.print(std::cout);

  // The overhead measurement rides along in the JSON (ungated here; the
  // gate is the separate --serve-off-check ctest entry).
  const obliv::Overhead m = obliv::measure_overhead(reps);
  obliv::print_overhead(m, /*ok=*/true);
  obliv::ServeRecord oc;
  oc.bench = "serve:off_check";
  oc.threads = obliv::bench::host_concurrency();
  oc.jobs = 1;
  oc.overhead_pct = m.over_pct;
  oc.noise_pct = m.noise_pct;
  json.add(oc);

  json.write();
  if (traced && obliv::obs::write_chrome_trace(trace_out, tracer)) {
    std::printf("trace written to %s (analyze with tools/obliv-trace)\n",
                trace_out.c_str());
  }
  return 0;
}
