// Experiment: Theorem 3 -- SPMS sorting.
//
// Reproduced claims:
//   (1) cache complexity O((n/(q_i B_i)) log_{C_i} n) per level;
//   (2) work Theta(n log n), span far below work (real parallelism);
//   (3) binary mergesort pays log_2(n/C_1) passes -- strictly more L1
//       misses than SPMS at n >> C_1 (the crossover the paper's sqrt(n)
//       recursion exists to win).
#include <cmath>
#include <iostream>

#include "algo/sort.hpp"
#include "bench/common.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

void run_on_machine(const hm::MachineConfig& cfg, bool smoke) {
  bench::print_machine(cfg);
  std::vector<bench::Series> miss(cfg.cache_levels());
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    miss[lvl - 1].name = "SPMS L" + std::to_string(lvl) +
                         " max misses vs (n/(q_i B_i)) log_{C_i} n";
  }
  bench::Series work{"SPMS work vs n log2 n"};
  bench::Series merge{"mergesort L1 misses vs (n/(q_1 B_1)) log2(n/C_1)"};

  for (std::uint64_t n :
       bench::sweep(smoke, {1u << 13, 1u << 14, 1u << 15, 1u << 16})) {
    util::Xoshiro256 rng(n);
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto buf = ex.make_buf<std::uint64_t>(n);
    for (auto& v : buf.raw()) v = rng();
    const auto m = ex.run(4 * n, [&] { algo::spms_sort(ex, buf.ref()); });
    for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
      const double logc = std::max(
          1.0, std::log(double(n)) / std::log(double(cfg.capacity(lvl))));
      miss[lvl - 1].add(
          double(n), double(m.level_max_misses[lvl - 1]),
          double(n) / (cfg.caches_at(lvl) * cfg.block(lvl)) * logc);
    }
    work.add(double(n), double(m.work), double(n) * std::log2(double(n)));

    for (auto& v : buf.raw()) v = rng();
    const auto mm = ex.run(4 * n, [&] {
      algo::mergesort_baseline(ex, buf.ref());
    });
    const double passes = std::max(
        1.0, std::log2(double(n) / double(cfg.capacity(1))));
    merge.add(double(n), double(mm.level_max_misses[0]),
              double(n) / (cfg.caches_at(1) * cfg.block(1)) * passes);
  }
  for (const auto& s : miss) bench::print_series(s);
  bench::print_series(work);
  bench::print_series(merge);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Theorem 3: SPMS sorting");
  run_on_machine(hm::MachineConfig::shared_l2(4), smoke);
  run_on_machine(hm::MachineConfig::three_level(4, 4), smoke);
  return 0;
}
