// Experiment: Table II -- the paper's summary table, regenerated.
//
// One row per problem, in the paper's order.  For each we report the
// measured MO quantities on the HM simulator (time = T_p by Brent from
// work/span; cache = max per-cache misses at level 1) and the measured NO
// communication on M(p, B), next to the paper's bound evaluated at the same
// parameters, with the measured/bound ratio.  A flat, O(1) ratio column is
// the reproduction criterion (constants are not claimed by the paper).
#include <cmath>
#include <iostream>
#include <numeric>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/graph.hpp"
#include "algo/listrank.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "bench/common.hpp"
#include "hm/config.hpp"
#include "no/colsort.hpp"
#include "no/fft.hpp"
#include "no/ngep.hpp"
#include "no/transpose.hpp"
#include "no/wrappers.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

struct Row {
  std::string problem;
  double time_meas, time_bound;
  double cache_meas, cache_bound;
  double comm_meas, comm_bound;
};

std::vector<Row> rows;

void add(const std::string& name, double tm, double tb, double cm, double cb,
         double om, double ob) {
  rows.push_back(Row{name, tm, tb, cm, cb, om, ob});
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Table II: summary of results (regenerated)");
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  bench::print_machine(cfg);
  const double p = cfg.cores();
  const double q1 = cfg.caches_at(1), B1 = cfg.block(1);
  const double C1 = cfg.capacity(1);
  const std::uint32_t no_p = 8;
  const std::uint64_t no_b = 4;
  std::cout << "NO fold: M(p=" << no_p << ", B=" << no_b << ")\n";
  util::Xoshiro256 rng(2026);

  // ---- Prefix sum, n = 2^16. ----
  {
    const std::uint64_t n = smoke ? 1 << 12 : 1 << 16;
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto buf = ex.make_buf<std::int64_t>(n);
    for (auto& v : buf.raw()) v = 1;
    const auto m = ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
    no::NoMachine mach(32, {{no_p, no_b}});
    bench::trace_attach(mach);
    std::vector<std::uint64_t> xs(n, 1);
    no::no_prefix_sum(mach, xs);
    add("Prefix sum", m.parallel_steps(cfg.cores()), double(n) / p,
        double(m.level_max_misses[0]), double(n) / (q1 * B1),
        double(mach.communication(0)),
        double(n) / (no_p * no_b));  // dominated by the data-local scans
  }

  // ---- Matrix transposition, n = 256. ----
  {
    const std::uint64_t n = smoke ? 64 : 256;
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto a = ex.make_buf<double>(n * n);
    auto out = ex.make_buf<double>(n * n);
    for (auto& v : a.raw()) v = 1.0;
    const auto m = ex.run(3 * n * n, [&] {
      algo::mo_transpose(ex, a.ref(), out.ref(), n);
    });
    no::NoMachine mach(n * n, {{no_p, no_b}});
    bench::trace_attach(mach);
    std::vector<double> host(n * n, 1.0), host_out;
    no::no_transpose(mach, host, host_out, n);
    add("Matrix transposition", m.parallel_steps(cfg.cores()),
        double(n * n) / p, double(m.level_max_misses[0]),
        double(n * n) / (q1 * B1), double(mach.communication(0)),
        double(n * n) / (no_b * no_p));
  }

  // ---- Matrix multiplication, n = 128. ----
  {
    const std::uint64_t n = smoke ? 32 : 128;
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto c = ex.make_buf<double>(n * n);
    auto a = ex.make_buf<double>(n * n);
    auto b = ex.make_buf<double>(n * n);
    for (auto& v : a.raw()) v = 1.0;
    for (auto& v : b.raw()) v = 1.0;
    using Mat = sched::MatView<sched::SimRef<double>>;
    const auto m = ex.run(4 * n * n, [&] {
      algo::mo_matmul(ex, Mat::full(c.ref(), n, n), Mat::full(a.ref(), n, n),
                      Mat::full(b.ref(), n, n));
    });
    // NO side: matmul embedded in N-GEP's D (Theorem 6's bound applies).
    std::vector<double> x(4 * n * n, 1.0);
    algo::MatMulEmbedInstance::half = n;
    no::NoMachine mach(256, {{no_p, no_b}});
    bench::trace_attach(mach);
    no::n_gep<algo::MatMulEmbedInstance>(mach, x, 2 * n, true);
    add("Matrix multiplication", m.parallel_steps(cfg.cores()),
        double(n) * n * n / p, double(m.level_max_misses[0]),
        double(n) * n * n / (q1 * B1 * std::sqrt(C1)),
        double(mach.communication(0)),
        double(2 * n) * (2 * n) / (no_b * std::sqrt(double(no_p))));
  }

  // ---- GEP (Floyd-Warshall), n = 128. ----
  {
    const std::uint64_t n = smoke ? 32 : 128;
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto buf = ex.make_buf<double>(n * n);
    for (auto& v : buf.raw()) v = rng.uniform();
    using Mat = sched::MatView<sched::SimRef<double>>;
    const auto m = ex.run(n * n, [&] {
      algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n));
    });
    std::vector<double> x(n * n, 1.0);
    no::NoMachine mach(256, {{no_p, no_b}});
    bench::trace_attach(mach);
    no::n_gep<algo::FloydWarshallInstance>(mach, x, n, true);
    add("GEP", m.parallel_steps(cfg.cores()), double(n) * n * n / p,
        double(m.level_max_misses[0]),
        double(n) * n * n / (q1 * B1 * std::sqrt(C1)),
        double(mach.communication(0)),
        double(n) * n / (no_b * std::sqrt(double(no_p))));
  }

  // ---- FFT, n = 2^16. ----
  {
    const std::uint64_t n = smoke ? 1 << 12 : 1 << 16;
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto buf = ex.make_buf<algo::cplx>(n);
    for (auto& v : buf.raw()) v = algo::cplx(1.0, 0.0);
    const auto m = ex.run(6 * n, [&] { algo::mo_fft(ex, buf.ref()); });
    const std::uint64_t no_n = smoke ? 1 << 10 : 1 << 12;
    no::NoMachine mach(no_n, {{no_p, no_b}});
    bench::trace_attach(mach);
    std::vector<algo::cplx> x(no_n, algo::cplx(1.0, 0.0));
    no::no_fft(mach, x);
    const double logc = std::log(double(n)) / std::log(C1);
    const double lognp =
        std::log(double(no_n)) / std::log(double(no_n) / no_p);
    add("FFT", m.parallel_steps(cfg.cores()),
        double(n) * std::log2(double(n)) / p,
        double(m.level_max_misses[0]), double(n) / (q1 * B1) * logc,
        double(mach.communication(0)),
        double(no_n) / (no_p * no_b) * lognp);
  }

  // ---- Sorting, n = 2^16 (MO: SPMS; NO: columnsort). ----
  {
    const std::uint64_t n = smoke ? 1 << 12 : 1 << 16;
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto buf = ex.make_buf<std::uint64_t>(n);
    for (auto& v : buf.raw()) v = rng();
    const auto m = ex.run(4 * n, [&] { algo::spms_sort(ex, buf.ref()); });
    const std::uint64_t no_n = smoke ? 1 << 10 : 1 << 14;
    const no::ColsortShape sh = no::colsort_shape(no_n);
    no::NoMachine mach(sh.s + 1, {{no_p, no_b}});
    bench::trace_attach(mach);
    std::vector<std::int64_t> keys(no_n);
    for (auto& v : keys) v = static_cast<std::int64_t>(rng.below(1u << 30));
    no::no_columnsort(mach, keys, std::numeric_limits<std::int64_t>::min(),
                      std::numeric_limits<std::int64_t>::max());
    const double logc = std::log(double(n)) / std::log(C1);
    add("Sorting", m.parallel_steps(cfg.cores()),
        double(n) * std::log2(double(n)) / p,
        double(m.level_max_misses[0]), double(n) / (q1 * B1) * logc,
        double(mach.communication(0)), double(no_n) / (no_p * no_b));
  }

  // ---- List ranking, n = 2^13. ----
  {
    const std::uint64_t n = smoke ? 1 << 10 : 1 << 13;
    std::vector<std::uint64_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::uint64_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    std::vector<std::uint64_t> succ(n, algo::kNil), pred(n, algo::kNil);
    for (std::uint64_t t = 0; t + 1 < n; ++t) {
      succ[perm[t]] = perm[t + 1];
      pred[perm[t + 1]] = perm[t];
    }
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto sb = ex.make_buf<std::uint64_t>(n);
    auto pb = ex.make_buf<std::uint64_t>(n);
    auto db = ex.make_buf<std::uint64_t>(n);
    sb.raw() = succ;
    pb.raw() = pred;
    const auto m = ex.run(8 * n, [&] {
      algo::mo_list_rank(ex, sb.ref(), pb.ref(), db.ref());
    });
    no::NoMachine mach(32, {{no_p, no_b}});
    bench::trace_attach(mach);
    no::no_list_rank(mach, succ, pred);
    const double logc = std::log(double(n)) / std::log(C1);
    add("List ranking", m.parallel_steps(cfg.cores()),
        double(n) * std::log2(double(n)) / p,
        double(m.level_max_misses[0]),
        double(n) / (q1 * B1) * std::max(1.0, logc),
        double(mach.communication(0)),
        double(n) / (no_p * no_b) * std::log2(double(n)));
  }

  util::Table t({"Problem", "T_p meas", "T_p bound", "ratio", "L1 miss meas",
                 "L1 miss bound", "ratio", "NO comm meas", "NO comm bound",
                 "ratio"});
  for (const Row& r : rows) {
    t.add_row({r.problem, util::Table::fmt(r.time_meas, "%.4g"),
               util::Table::fmt(r.time_bound, "%.4g"),
               util::Table::fmt(r.time_meas / r.time_bound, "%.2f"),
               util::Table::fmt(r.cache_meas, "%.4g"),
               util::Table::fmt(r.cache_bound, "%.4g"),
               util::Table::fmt(r.cache_meas / r.cache_bound, "%.2f"),
               util::Table::fmt(r.comm_meas, "%.4g"),
               util::Table::fmt(r.comm_bound, "%.4g"),
               util::Table::fmt(r.comm_meas / r.comm_bound, "%.2f")});
  }
  std::cout << "\n";
  t.print(std::cout);
  std::cout << "\nRatios are measured/bound at the stated sizes; the paper "
               "claims the bounds up to constants,\nso O(1)-to-O(10) flat "
               "ratios reproduce Table II. Per-problem n-sweeps are in the "
               "dedicated benches.\n";
  return 0;
}
