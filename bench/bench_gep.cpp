// Experiment: Theorem 5 / Figure 5 / Table II rows "GEP" and "Matrix
// multiplication" -- I-GEP under the SB scheduler.
//
// Reproduced claims:
//   (1) cache complexity O(n^3/(q_i B_i sqrt(C_i))) per level, for three
//       GEP instances (Floyd-Warshall, Gaussian elimination, and matrix
//       multiplication via function D);
//   (2) parallel steps O(n^3/p);
//   (3) the classic k-major GEP loop (Figure 5) pays Theta(n^3/B_1) at L1
//       -- missing the sqrt(C) divisor I-GEP's anchoring buys.
#include <cmath>
#include <iostream>

#include "algo/gep.hpp"
#include "bench/common.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

using Ref = sched::SimRef<double>;
using Mat = sched::MatView<Ref>;

template <class Inst>
void sweep_instance(const hm::MachineConfig& cfg, const std::string& name,
                    bool diag_dominant, bool smoke) {
  std::vector<bench::Series> miss(cfg.cache_levels());
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    miss[lvl - 1].name = name + " L" + std::to_string(lvl) +
                         " misses vs n^3/(q_i B_i sqrt(C_i))";
  }
  bench::Series steps{name + " parallel steps vs n^3/p"};
  for (std::uint64_t n : bench::sweep(smoke, {32u, 64u, 128u, 256u})) {
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto buf = ex.make_buf<double>(n * n);
    util::Xoshiro256 rng(n);
    for (std::uint64_t i = 0; i < n * n; ++i) {
      buf.raw()[i] = rng.uniform() + 0.1;
      if (diag_dominant && i / n == i % n) buf.raw()[i] += double(n);
    }
    const auto m = ex.run(n * n, [&] {
      algo::igep<Inst>(ex, Mat::full(buf.ref(), n, n));
    });
    const double n3 = double(n) * n * n;
    for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
      miss[lvl - 1].add(double(n), double(m.level_max_misses[lvl - 1]),
                        n3 / (cfg.caches_at(lvl) * cfg.block(lvl) *
                              std::sqrt(double(cfg.capacity(lvl)))));
    }
    steps.add(double(n), m.parallel_steps(cfg.cores()), n3 / cfg.cores());
  }
  for (const auto& s : miss) bench::print_series(s);
  bench::print_series(steps);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Theorem 5 / Figure 5: I-GEP under SB");
  // Small caches so the sweep reaches the n^2 >> C_i regime of Theorem 5 at
  // simulable sizes (with desktop-scale caches the whole matrix fits in L2
  // until n ~ 1024, where the n^3 simulation is impractical).
  const hm::MachineConfig cfg("small_caches",
                              {hm::LevelSpec{256, 8, 1},
                               hm::LevelSpec{8192, 16, 4}});
  bench::print_machine(cfg);

  sweep_instance<algo::FloydWarshallInstance>(cfg, "FW", false, smoke);
  sweep_instance<algo::GaussianInstance>(cfg, "Gaussian", true, smoke);

  // Matrix multiplication: I-GEP function D invoked directly.
  {
    bench::Series miss{"matmul (fn D) L1 misses vs n^3/(q_1 B_1 sqrt(C_1))"};
    for (std::uint64_t n : bench::sweep(smoke, {32u, 64u, 128u, 256u})) {
      sched::SimExecutor ex(cfg);
      bench::trace_attach(ex);
      auto c = ex.make_buf<double>(n * n);
      auto a = ex.make_buf<double>(n * n);
      auto b = ex.make_buf<double>(n * n);
      for (auto& v : a.raw()) v = 1.0;
      for (auto& v : b.raw()) v = 1.0;
      const auto m = ex.run(4 * n * n, [&] {
        algo::mo_matmul(ex, Mat::full(c.ref(), n, n), Mat::full(a.ref(), n, n),
                        Mat::full(b.ref(), n, n));
      });
      miss.add(double(n), double(m.level_max_misses[0]),
               double(n) * n * n /
                   (cfg.caches_at(1) * cfg.block(1) *
                    std::sqrt(double(cfg.capacity(1)))));
    }
    bench::print_series(miss);
  }

  // Baseline: the Figure-5 loop.
  {
    bench::Series loop{"GEP loop (baseline) L1 misses vs n^3/(q_1 B_1)"};
    for (std::uint64_t n : bench::sweep(smoke, {32u, 64u, 128u, 256u})) {
      sched::SimExecutor ex(cfg);
      bench::trace_attach(ex);
      auto buf = ex.make_buf<double>(n * n);
      for (auto& v : buf.raw()) v = 1.0;
      const auto m = ex.run(n * n, [&] {
        algo::gep_loop<algo::FloydWarshallInstance>(
            ex, Mat::full(buf.ref(), n, n));
      });
      loop.add(double(n), double(m.level_max_misses[0]),
               double(n) * n * n / (cfg.caches_at(1) * cfg.block(1)));
    }
    bench::print_series(loop);
  }
  return 0;
}
