// Experiment: Theorem 2 / Figure 3 -- MO-FFT.
//
// Reproduced claims:
//   (1) cache complexity O((n/(q_i B_i)) log_{C_i} n) per level;
//   (2) parallel steps O((n/p + B_1) log n);
//   (3) the unblocked iterative radix-2 FFT pays log_2(n/C) passes over the
//       data instead of log_{C} n -- more L1 misses at large n.
#include <cmath>
#include <iostream>

#include "algo/fft.hpp"
#include "bench/common.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"

using namespace obliv;

namespace {

double log_base(double base, double v) {
  return std::log(v) / std::log(base);
}

void run_on_machine(const hm::MachineConfig& cfg, bool smoke) {
  bench::print_machine(cfg);
  std::vector<bench::Series> miss(cfg.cache_levels());
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    miss[lvl - 1].name = "MO-FFT L" + std::to_string(lvl) +
                         " max misses vs (n/(q_i B_i)) log_{C_i} n";
  }
  bench::Series steps{"MO-FFT parallel steps (W/p + span) vs (n/p+B_1) log n"};
  bench::Series iter{"iterative FFT L1 misses vs (n/(q_1 B_1)) log2(n/C_1)"};

  for (std::uint64_t n :
       bench::sweep(smoke, {1u << 12, 1u << 14, 1u << 16, 1u << 18})) {
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto buf = ex.make_buf<algo::cplx>(n);
    for (auto& v : buf.raw()) v = algo::cplx(1.0, 0.0);
    const auto m = ex.run(6 * n, [&] { algo::mo_fft(ex, buf.ref()); });
    for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
      const double logc = std::max(
          1.0, log_base(double(cfg.capacity(lvl)), double(n)));
      miss[lvl - 1].add(
          double(n), double(m.level_max_misses[lvl - 1]),
          2.0 * double(n) / (cfg.caches_at(lvl) * cfg.block(lvl)) * logc);
    }
    steps.add(double(n), m.parallel_steps(cfg.cores()),
              (double(n) / cfg.cores() + double(cfg.block(1))) *
                  util::ilog2(n));

    const auto mi = ex.run(6 * n, [&] { algo::iterative_fft(ex, buf.ref()); });
    const double passes = std::max(
        1.0, std::log2(double(n) / double(cfg.capacity(1))));
    iter.add(double(n), double(mi.level_max_misses[0]),
             2.0 * double(n) / (cfg.caches_at(1) * cfg.block(1)) * passes);
  }
  for (const auto& s : miss) bench::print_series(s);
  bench::print_series(steps);
  bench::print_series(iter);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Theorem 2 / Figure 3: MO-FFT");
  run_on_machine(hm::MachineConfig::shared_l2(4), smoke);
  run_on_machine(hm::MachineConfig::three_level(4, 4), smoke);
  return 0;
}
