// Experiment: Theorem 9 -- NO-LR list ranking on M(p, B).
//
// Reproduced claims:
//   (1) computation complexity Theta((n/p) log n): halves when p doubles;
//   (2) communication dominated by the O(1) sorts/scans per contraction
//       level: grows ~linearly in n at fixed (p, B) and decreases with B;
//   (3) nodes are evenly distributed among PEs (the block-distributed
//       buffers of NoExecutor), the distinguishing choice of Section VI-B.
#include <cmath>
#include <iostream>
#include <numeric>

#include "algo/listrank.hpp"
#include "bench/common.hpp"
#include "no/wrappers.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

void make_list(std::uint64_t n, std::uint64_t seed,
               std::vector<std::uint64_t>& succ,
               std::vector<std::uint64_t>& pred) {
  std::vector<std::uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  util::Xoshiro256 rng(seed);
  for (std::uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  succ.assign(n, algo::kNil);
  pred.assign(n, algo::kNil);
  for (std::uint64_t t = 0; t + 1 < n; ++t) {
    succ[perm[t]] = perm[t + 1];
    pred[perm[t + 1]] = perm[t];
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Theorem 9: NO-LR on M(p, B)");

  // (1)+(2): n-sweep on fixed folds.
  {
    bench::Series comm{"NO-LR communication vs n/(pB) * log n, p=8, B=4"};
    bench::Series comp{"NO-LR computation vs (n/p) log2 n, p=8"};
    for (std::uint64_t n :
         bench::sweep(smoke, {1u << 10, 1u << 11, 1u << 12, 1u << 13})) {
      std::vector<std::uint64_t> succ, pred;
      make_list(n, n, succ, pred);
      no::NoMachine mach(32, {{8, 4}});
      bench::trace_attach(mach);
      no::no_list_rank(mach, succ, pred);
      comm.add(double(n), double(mach.communication(0)),
               double(n) / (8.0 * 4.0) * std::log2(double(n)));
      comp.add(double(n), double(mach.computation(0)),
               double(n) / 8.0 * std::log2(double(n)));
    }
    bench::print_series(comm);
    bench::print_series(comp);
  }

  // p-sweep at fixed n: computation must scale down with p.
  {
    util::Table t({"p", "communication (B=4)", "computation"});
    const std::uint64_t n = smoke ? 1 << 10 : 1 << 12;
    std::vector<std::uint64_t> succ, pred;
    make_list(n, 5, succ, pred);
    for (std::uint32_t p : {1u, 2u, 4u, 8u, 16u, 32u}) {
      no::NoMachine mach(32, {{p, 4}});
      bench::trace_attach(mach);
      no::no_list_rank(mach, succ, pred);
      t.add_row({util::Table::fmt(std::uint64_t(p)),
                 util::Table::fmt(mach.communication(0)),
                 util::Table::fmt(mach.computation(0))});
    }
    std::cout << "\n-- NO-LR p-sweep (n=4096) --\n";
    t.print(std::cout);
  }

  // B-sweep: blocks amortize words.
  {
    util::Table t({"B", "communication (p=8)"});
    const std::uint64_t n = smoke ? 1 << 10 : 1 << 12;
    std::vector<std::uint64_t> succ, pred;
    make_list(n, 6, succ, pred);
    for (std::uint64_t B : {1u, 2u, 4u, 8u, 16u}) {
      no::NoMachine mach(32, {{8, B}});
      bench::trace_attach(mach);
      no::no_list_rank(mach, succ, pred);
      t.add_row({util::Table::fmt(std::uint64_t(B)),
                 util::Table::fmt(mach.communication(0))});
    }
    std::cout << "\n-- NO-LR B-sweep (n=4096) --\n";
    t.print(std::cout);
  }
  return 0;
}
