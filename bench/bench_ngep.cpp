// Experiment: Table I / Theorem 6 -- N-GEP on M(p, B) and D-BSP.
//
// Reproduced claims:
//   (1) Table I's point: I-GEP's D order duplicates U/V quadrants within a
//       round, concentrating traffic; N-GEP's D* uses each exactly once --
//       measurably lower communication at every (p, B);
//   (2) communication O(n^2/(sqrt(p) B) + n log^2 n): n-sweep at fixed
//       (p, B) tracks n^2, p-sweep at fixed n tracks 1/sqrt(p);
//   (3) computation complexity Theta(n^3/p);
//   (4) D-BSP communication time is finite and reported (mesh-like g_i).
#include <cmath>
#include <iostream>

#include "algo/gep.hpp"
#include "bench/common.hpp"
#include "no/ngep.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

std::vector<double> rand_matrix(std::uint64_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> x(n * n);
  for (auto& v : x) v = rng.uniform() + 0.1;
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Table I / Theorem 6: N-GEP (D vs D*)");

  // (1) D vs D* communication across (p, B) folds, n = 128, N = 256 PEs.
  {
    const std::uint64_t n = smoke ? 32 : 128, pes = smoke ? 64 : 256;
    std::vector<no::FoldConfig> folds =
        smoke ? std::vector<no::FoldConfig>{{16, 4}, {64, 4}}
              : std::vector<no::FoldConfig>{
                    {16, 4}, {64, 4}, {256, 4}, {64, 16}};
    util::Table t({"fold (p,B)", "comm D", "comm D*", "D/D*"});
    std::vector<std::uint64_t> cd(folds.size()), cs(folds.size());
    {
      auto x = rand_matrix(n, 1);
      no::NoMachine mach(pes, folds);
      bench::trace_attach(mach);
      no::n_gep<algo::FloydWarshallInstance>(mach, x, n, false);
      for (std::size_t f = 0; f < folds.size(); ++f) {
        cd[f] = mach.communication(f);
      }
    }
    {
      auto x = rand_matrix(n, 1);
      no::NoMachine mach(pes, folds);
      bench::trace_attach(mach);
      no::n_gep<algo::FloydWarshallInstance>(mach, x, n, true);
      for (std::size_t f = 0; f < folds.size(); ++f) {
        cs[f] = mach.communication(f);
      }
    }
    for (std::size_t f = 0; f < folds.size(); ++f) {
      t.add_row({"(" + std::to_string(folds[f].p) + "," +
                     std::to_string(folds[f].block) + ")",
                 util::Table::fmt(cd[f]), util::Table::fmt(cs[f]),
                 util::Table::fmt(double(cd[f]) / double(cs[f]), "%.3f")});
    }
    std::cout << "\n-- D vs D* communication (n=128, N=256 PEs) --\n";
    t.print(std::cout);
  }

  // (2a) n-sweep at fixed fold: comm vs n^2/(sqrt(p) B).
  {
    bench::Series s{"N-GEP(D*) comm vs n^2/(sqrt(p)B), p=64, B=4"};
    bench::Series comp{"N-GEP(D*) computation vs n^3/p"};
    for (std::uint64_t n : bench::sweep(smoke, {32u, 64u, 128u, 256u})) {
      auto x = rand_matrix(n, 2);
      no::NoMachine mach(256, {{64, 4}});
      bench::trace_attach(mach);
      no::n_gep<algo::FloydWarshallInstance>(mach, x, n, true);
      s.add(double(n), double(mach.communication(0)),
            double(n) * n / (std::sqrt(64.0) * 4.0));
      comp.add(double(n), double(mach.computation(0)),
               double(n) * n * n / 64.0);
    }
    bench::print_series(s);
    bench::print_series(comp);
  }

  // (2b) p-sweep at fixed n: comm vs n^2/(sqrt(p) B).
  {
    bench::Series s{"N-GEP(D*) comm vs n^2/(sqrt(p)B), n=128, B=4"};
    const std::uint64_t n = smoke ? 64 : 128;
    for (std::uint32_t p : bench::sweep(smoke, {4u, 16u, 64u, 256u})) {
      auto x = rand_matrix(n, 3);
      no::NoMachine mach(256, {{p, 4}});
      bench::trace_attach(mach);
      no::n_gep<algo::FloydWarshallInstance>(mach, x, n, true);
      s.add(double(p), double(mach.communication(0)),
            double(n) * double(n) / (std::sqrt(double(p)) * 4.0));
    }
    bench::print_series(s, "p");
  }

  // (4) D-BSP communication time under mesh-like g.
  {
    util::Table t({"n", "D-BSP time (D)", "D-BSP time (D*)"});
    for (std::uint64_t n : bench::sweep(smoke, {32u, 64u, 128u})) {
      double td, ts;
      {
        auto x = rand_matrix(n, 4);
        no::NoMachine mach(64, {{64, 4}}, no::DbspConfig::mesh_like(64));
        bench::trace_attach(mach);
        no::n_gep<algo::FloydWarshallInstance>(mach, x, n, false);
        td = mach.dbsp_time();
      }
      {
        auto x = rand_matrix(n, 4);
        no::NoMachine mach(64, {{64, 4}}, no::DbspConfig::mesh_like(64));
        bench::trace_attach(mach);
        no::n_gep<algo::FloydWarshallInstance>(mach, x, n, true);
        ts = mach.dbsp_time();
      }
      t.add_row({util::Table::fmt(std::uint64_t(n)),
                 util::Table::fmt(td, "%.4g"), util::Table::fmt(ts, "%.4g")});
    }
    std::cout << "\n-- D-BSP(64, mesh-like) communication time --\n";
    t.print(std::cout);
  }
  return 0;
}
