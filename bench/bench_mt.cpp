// Experiment: Theorem 1 / Figure 2 -- MO-MT matrix transposition.
//
// Paper's claims reproduced here:
//   (1) cache complexity O(n^2/(q_i B_i) + B_i) at every level i, on
//       machines with different depths -- the bound is oblivious;
//   (2) parallel steps O(n^2/p + B_1): span stays constant as n grows
//       (contrast: the recursive cache-oblivious transposition has
//       Theta(log n) fork depth);
//   (3) the naive row-major loop misses ~n^2 times (no 1/B factor).
#include <iostream>
#include <vector>

#include "algo/transpose.hpp"
#include "bench/common.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"

using namespace obliv;

namespace {

void run_on_machine(const hm::MachineConfig& cfg, bool smoke) {
  bench::print_machine(cfg);
  std::vector<bench::Series> miss_series(cfg.cache_levels());
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    miss_series[lvl - 1].name =
        "MO-MT L" + std::to_string(lvl) +
        " max misses vs n^2/(q_i B_i) + B_i";
  }
  bench::Series span_mo{"MO-MT span vs B_1 + n^2/p"};
  bench::Series span_rec{"recursive transpose span vs (n^2/p + B_1 log n)"};
  bench::Series naive{"naive transpose L1 misses vs n^2/q_1 (no 1/B)"};

  for (std::uint64_t n : bench::sweep(smoke, {128u, 256u, 512u, 1024u})) {
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto a = ex.make_buf<double>(n * n);
    auto out = ex.make_buf<double>(n * n);
    for (auto& v : a.raw()) v = 1.0;
    const auto m = ex.run(3 * n * n, [&] {
      algo::mo_transpose(ex, a.ref(), out.ref(), n);
    });
    for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
      const double model = double(n * n) /
                               (cfg.caches_at(lvl) * cfg.block(lvl)) +
                           double(cfg.block(lvl));
      miss_series[lvl - 1].add(double(n), double(m.level_max_misses[lvl - 1]),
                               model);
    }
    span_mo.add(double(n), double(m.span),
                double(cfg.block(1)) + double(n * n) / cfg.cores());

    const auto mr = ex.run(3 * n * n, [&] {
      algo::recursive_transpose(ex, a.ref(), out.ref(), n);
    });
    span_rec.add(double(n), double(mr.span),
                 double(n * n) / cfg.cores() +
                     double(cfg.block(1)) * util::ilog2(n));

    const auto mn = ex.run(3 * n * n, [&] {
      algo::naive_transpose(ex, a.ref(), out.ref(), n);
    });
    naive.add(double(n), double(mn.level_max_misses[0]),
              double(n * n) / cfg.caches_at(1));
  }
  for (const auto& s : miss_series) bench::print_series(s);
  bench::print_series(span_mo);
  bench::print_series(span_rec);
  bench::print_series(naive);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Theorem 1 / Figure 2: MO-MT matrix transposition");
  run_on_machine(hm::MachineConfig::shared_l2(4), smoke);
  run_on_machine(hm::MachineConfig::three_level(4, 4), smoke);
  run_on_machine(hm::MachineConfig::figure1(), smoke);
  return 0;
}
