// Frozen copy of the pre-optimization HM cache simulator (the seed
// implementation, std::unordered_map keyed), vendored verbatim so that
// bench_simrate can race the current hm::CacheSim against it head-to-head
// in one process: both replay the identical access trace with interleaved
// repetitions, so ambient load hits both series equally and the reported
// speedup is meaningful on a noisy host.  The bench also cross-checks that
// both simulators produce bit-identical miss / eviction / invalidation /
// ping-pong counters on every trace, which is the semantic contract the
// optimized simulator must keep (see tests/test_golden_counters.cpp).
//
// Do not "fix" or modernize this file: its value is being the unchanged
// reference point.  It tracks the simulator as of the work-stealing PR
// (pre fast-path rewrite).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hm/cache_sim.hpp"  // for hm::CacheCounters
#include "hm/config.hpp"

namespace obliv::bench {

/// Fully-associative LRU cache over abstract block ids (seed version).
class BaselineLruCache {
 public:
  explicit BaselineLruCache(std::size_t lines) : lines_(lines) {
    assert(lines_ > 0);
    map_.reserve(lines_ * 2);
  }

  bool touch(std::uint64_t block) {
    last_evicted_ = ~0ull;
    auto it = map_.find(block);
    if (it != map_.end()) {
      const std::uint32_t idx = it->second;
      if (head_ != idx) {
        unlink(idx);
        push_front(idx);
      }
      return true;
    }
    std::uint32_t idx;
    if (map_.size() >= lines_) {
      idx = tail_;
      last_evicted_ = nodes_[idx].block;
      map_.erase(nodes_[idx].block);
      unlink(idx);
    } else if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{});
    }
    nodes_[idx].block = block;
    push_front(idx);
    map_.emplace(block, idx);
    return false;
  }

  bool erase(std::uint64_t block) {
    auto it = map_.find(block);
    if (it == map_.end()) return false;
    const std::uint32_t idx = it->second;
    unlink(idx);
    free_.push_back(idx);
    map_.erase(it);
    return true;
  }

  std::uint64_t last_evicted() const { return last_evicted_; }

  void clear() {
    map_.clear();
    nodes_.clear();
    free_.clear();
    head_ = tail_ = kNil;
    last_evicted_ = ~0ull;
  }

 private:
  struct Node {
    std::uint64_t block;
    std::uint32_t prev, next;
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;

  void unlink(std::uint32_t idx) {
    Node& n = nodes_[idx];
    if (n.prev != kNil) {
      nodes_[n.prev].next = n.next;
    } else {
      head_ = n.next;
    }
    if (n.next != kNil) {
      nodes_[n.next].prev = n.prev;
    } else {
      tail_ = n.prev;
    }
  }

  void push_front(std::uint32_t idx) {
    Node& n = nodes_[idx];
    n.prev = kNil;
    n.next = head_;
    if (head_ != kNil) nodes_[head_].prev = idx;
    head_ = idx;
    if (tail_ == kNil) tail_ = idx;
  }

  std::size_t lines_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<std::uint64_t, std::uint32_t> map_;
  std::uint32_t head_ = kNil, tail_ = kNil;
  std::uint64_t last_evicted_ = ~0ull;
};

/// The seed whole-hierarchy simulator (same observable counters as
/// hm::CacheSim; one hash-map probe per level per block touch plus one
/// sharer-map probe per block touch on multicore configs).
class BaselineCacheSim {
 public:
  explicit BaselineCacheSim(hm::MachineConfig cfg) : cfg_(std::move(cfg)) {
    const std::uint32_t L = cfg_.cache_levels();
    caches_.reserve(L);
    counters_.resize(L);
    for (std::uint32_t lvl = 1; lvl <= L; ++lvl) {
      const std::size_t lines =
          std::max<std::uint64_t>(1, cfg_.capacity(lvl) / cfg_.block(lvl));
      std::vector<BaselineLruCache> row;
      row.reserve(cfg_.caches_at(lvl));
      for (std::uint32_t c = 0; c < cfg_.caches_at(lvl); ++c) {
        row.emplace_back(lines);
      }
      caches_.push_back(std::move(row));
      counters_[lvl - 1].resize(cfg_.caches_at(lvl));
    }
  }

  void access(std::uint32_t core, std::uint64_t addr, std::uint32_t words,
              bool write) {
    assert(core < cfg_.cores());
    const std::uint64_t b1 = cfg_.block(1);
    const std::uint64_t first = addr / b1;
    const std::uint64_t last =
        (addr + std::max<std::uint32_t>(words, 1) - 1) / b1;
    const std::uint32_t L = cfg_.cache_levels();
    for (std::uint64_t blk1 = first; blk1 <= last; ++blk1) {
      ++accesses_;
      const std::uint64_t word0 = blk1 * b1;
      if (cfg_.cores() > 1) {
        auto& sharers = l1_sharers_[blk1];
        const std::uint64_t me = 1ull << (core % 64);
        if (write && (sharers & ~me) != 0) {
          ++pingpong_;
          for (std::uint32_t c = 0; c < cfg_.cores(); ++c) {
            if (c == core) continue;
            if (sharers & (1ull << (c % 64))) {
              if (caches_[0][cfg_.cache_of(c, 1)].erase(blk1)) {
                ++counters_[0][cfg_.cache_of(c, 1)].invalidations;
              }
            }
          }
          sharers = me;
        } else {
          sharers |= me;
        }
      }
      for (std::uint32_t lvl = 1; lvl <= L; ++lvl) {
        const std::uint64_t blk = word0 / cfg_.block(lvl);
        const std::uint32_t idx = cfg_.cache_of(core, lvl);
        BaselineLruCache& cache = caches_[lvl - 1][idx];
        hm::CacheCounters& ctr = counters_[lvl - 1][idx];
        if (cache.touch(blk)) {
          ++ctr.hits;
          break;
        }
        ++ctr.misses;
        if (cache.last_evicted() != ~0ull) {
          ++ctr.evictions;
          if (lvl == 1) {
            auto it = l1_sharers_.find(cache.last_evicted());
            if (it != l1_sharers_.end()) {
              it->second &= ~(1ull << (core % 64));
              if (it->second == 0) l1_sharers_.erase(it);
            }
          }
        }
      }
    }
  }

  const hm::CacheCounters& counters(std::uint32_t level,
                                    std::uint32_t idx) const {
    return counters_.at(level - 1).at(idx);
  }
  std::uint32_t caches_at(std::uint32_t level) const {
    return static_cast<std::uint32_t>(counters_.at(level - 1).size());
  }
  std::uint64_t pingpong_events() const { return pingpong_; }

  void clear() {
    for (auto& row : counters_) {
      std::fill(row.begin(), row.end(), hm::CacheCounters{});
    }
    pingpong_ = 0;
    accesses_ = 0;
    for (auto& row : caches_) {
      for (auto& c : row) c.clear();
    }
    l1_sharers_.clear();
  }

 private:
  hm::MachineConfig cfg_;
  std::vector<std::vector<BaselineLruCache>> caches_;
  std::vector<std::vector<hm::CacheCounters>> counters_;
  std::unordered_map<std::uint64_t, std::uint64_t> l1_sharers_;
  std::uint64_t pingpong_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace obliv::bench
