// Experiment: the HM model vs real hardware.
//
// The simulator benches validate the theorems against the *model*; this
// binary runs the same cache-oblivious-vs-naive comparisons on the actual
// host with hardware performance counters.  The paper's premise is that
// oblivious algorithms perform well on any cache hierarchy -- here the
// hierarchy is whatever CPU this runs on.
//
// Requires perf_event access; prints the counter error and the wall-clock
// comparison only when counters are locked down (common in containers).
#include <chrono>
#include <iostream>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/transpose.hpp"
#include "bench/common.hpp"
#include "sched/native_executor.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace obliv;

namespace {

struct Measurement {
  double ms = 0;
  std::optional<std::uint64_t> llc_misses, l1d_misses;
};

template <class F>
Measurement measure(F&& f) {
  util::PerfCounterGroup group(
      {util::PerfEvent::kCacheMisses, util::PerfEvent::kL1DReadMisses});
  Measurement m;
  group.start();
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  group.stop();
  m.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.llc_misses = group.value(0);
  m.l1d_misses = group.value(1);
  return m;
}

std::string fmt_opt(const std::optional<std::uint64_t>& v) {
  return v ? util::Table::fmt(*v) : std::string("n/a");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  std::cout << "==== Native hardware-counter comparison ====\n";
  {
    util::PerfCounterGroup probe({util::PerfEvent::kInstructions});
    if (!probe.available()) {
      std::cout << "(hardware counters unavailable: " << probe.error()
                << "; falling back to wall-clock only)\n";
    }
  }
  sched::NativeExecutor ex(1);  // single thread isolates memory behaviour
  bench::trace_attach(ex);      // one worker, so the default 1-ring export
                                // stays single-producer
  util::Xoshiro256 rng(1);

  util::Table t({"workload", "ms", "LLC misses", "L1D read misses"});
  // Transposition: MO-MT vs naive strided.
  {
    const std::uint64_t n = smoke ? 256 : 2048;
    auto a = ex.make_buf<double>(n * n);
    auto out = ex.make_buf<double>(n * n);
    for (auto& v : a.raw()) v = rng.uniform();
    auto warm = measure([&] { algo::mo_transpose(ex, a.ref(), out.ref(), n); });
    (void)warm;
    auto mo = measure([&] { algo::mo_transpose(ex, a.ref(), out.ref(), n); });
    auto naive =
        measure([&] { algo::naive_transpose(ex, a.ref(), out.ref(), n); });
    t.add_row({"MO-MT n=2048", util::Table::fmt(mo.ms, "%.1f"),
               fmt_opt(mo.llc_misses), fmt_opt(mo.l1d_misses)});
    t.add_row({"naive transpose n=2048", util::Table::fmt(naive.ms, "%.1f"),
               fmt_opt(naive.llc_misses), fmt_opt(naive.l1d_misses)});
  }
  // GEP: I-GEP vs the k-major loop.
  {
    const std::uint64_t n = smoke ? 128 : 512;
    auto buf = ex.make_buf<double>(n * n);
    using Mat = sched::MatView<sched::NatRef<double>>;
    for (auto& v : buf.raw()) v = rng.uniform();
    auto igep = measure([&] {
      algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n),
                                              32);
    });
    for (auto& v : buf.raw()) v = rng.uniform();
    auto loop = measure([&] {
      algo::gep_loop<algo::FloydWarshallInstance>(ex,
                                                  Mat::full(buf.ref(), n, n));
    });
    t.add_row({"I-GEP FW n=512", util::Table::fmt(igep.ms, "%.1f"),
               fmt_opt(igep.llc_misses), fmt_opt(igep.l1d_misses)});
    t.add_row({"GEP loop FW n=512", util::Table::fmt(loop.ms, "%.1f"),
               fmt_opt(loop.llc_misses), fmt_opt(loop.l1d_misses)});
  }
  t.print(std::cout);
  return 0;
}
