// Experiment: the HM model vs real hardware.
//
// The simulator benches validate the theorems against the *model*; this
// binary runs the same cache-oblivious-vs-naive comparisons on the actual
// host with hardware performance counters.  The paper's premise is that
// oblivious algorithms perform well on any cache hierarchy -- here the
// hierarchy is whatever CPU this runs on.
//
// Requires perf_event access; prints the counter error and the wall-clock
// comparison only when counters are locked down (common in containers).
#include <chrono>
#include <iostream>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/transpose.hpp"
#include "bench/common.hpp"
#include "bench/simd_kernel_benches.hpp"
#include "sched/native_executor.hpp"
#include "util/perf_counters.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

using namespace obliv;

namespace {

struct Measurement {
  double ms = 0;
  std::optional<std::uint64_t> llc_misses, l1d_misses;
};

template <class F>
Measurement measure(F&& f) {
  util::PerfCounterGroup group(
      {util::PerfEvent::kCacheMisses, util::PerfEvent::kL1DReadMisses});
  Measurement m;
  group.start();
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  group.stop();
  m.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.llc_misses = group.value(0);
  m.l1d_misses = group.value(1);
  return m;
}

std::string fmt_opt(const std::optional<std::uint64_t>& v) {
  return v ? util::Table::fmt(*v) : std::string("n/a");
}

/// Counter readings for one kernel run: retired instructions, cycles, LLC
/// misses (any may be nullopt when perf_event is locked down).
struct KernelCounters {
  double ms = 0;
  std::optional<std::uint64_t> instructions, cycles, llc_misses;
};

template <class F>
KernelCounters measure_kernel(F&& f) {
  util::PerfCounterGroup group({util::PerfEvent::kInstructions,
                                util::PerfEvent::kCycles,
                                util::PerfEvent::kCacheMisses});
  KernelCounters c;
  group.start();
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  group.stop();
  c.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  c.instructions = group.value(0);
  c.cycles = group.value(1);
  c.llc_misses = group.value(2);
  return c;
}

/// SIMD kernel validation: every vectorized family from the shared bench
/// list, measured under Mode::kScalar and Mode::kAuto with hardware
/// counters.  The vector win should show up as *fewer retired
/// instructions* at similar IPC -- lanes retire 4 elements per
/// instruction -- while LLC misses stay flat (same working set, same
/// access order).  A "speedup" that instead came from fewer misses would
/// mean the kernel changed the access pattern, which the SIMD layer
/// promises not to do.
void simd_counter_validation(bool smoke) {
  std::cout << "\n==== SIMD kernel validation (scalar vs auto) ====\n";
  std::cout << "isa = " << simd::active_isa()
            << ", lanes = " << simd::lane_width() << ", compiled "
            << (simd::kSimdCompiledIn ? "in" : "out") << "\n";
  {
    util::PerfCounterGroup probe({util::PerfEvent::kCycles});
    if (!probe.available()) {
      std::cout << "(hardware counters unavailable: " << probe.error()
                << "; reporting wall-clock only)\n";
    }
  }
  util::Table t({"kernel", "sc instr", "au instr", "instr ratio", "sc IPC",
                 "au IPC", "LLC delta"});
  for (auto& kb : bench::kernel_benches(smoke)) {
    kb.run();  // warm: touch all pages before either measured pass
    KernelCounters sc, au;
    {
      simd::ScopedMode m(simd::Mode::kScalar);
      sc = measure_kernel(kb.run);
    }
    {
      simd::ScopedMode m(simd::Mode::kAuto);
      au = measure_kernel(kb.run);
    }
    std::string ratio = "n/a", sc_ipc = "n/a", au_ipc = "n/a", dmiss = "n/a";
    if (sc.instructions && au.instructions && *au.instructions > 0) {
      ratio = util::Table::fmt(
          static_cast<double>(*sc.instructions) /
              static_cast<double>(*au.instructions),
          "%.2fx");
    }
    if (sc.instructions && sc.cycles && *sc.cycles > 0) {
      sc_ipc = util::Table::fmt(static_cast<double>(*sc.instructions) /
                                    static_cast<double>(*sc.cycles),
                                "%.2f");
    }
    if (au.instructions && au.cycles && *au.cycles > 0) {
      au_ipc = util::Table::fmt(static_cast<double>(*au.instructions) /
                                    static_cast<double>(*au.cycles),
                                "%.2f");
    }
    if (sc.llc_misses && au.llc_misses) {
      const auto d = static_cast<std::int64_t>(*au.llc_misses) -
                     static_cast<std::int64_t>(*sc.llc_misses);
      dmiss = (d >= 0 ? "+" : "") + util::Table::fmt(d);
    }
    t.add_row({kb.name, fmt_opt(sc.instructions), fmt_opt(au.instructions),
               ratio, sc_ipc, au_ipc, dmiss});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  std::cout << "==== Native hardware-counter comparison ====\n";
  std::cout << "hardware_concurrency = " << bench::host_concurrency()
            << ", pinned = " << (bench::threads_pinned() ? "yes" : "no")
            << "\n";
  {
    util::PerfCounterGroup probe({util::PerfEvent::kInstructions});
    if (!probe.available()) {
      std::cout << "(hardware counters unavailable: " << probe.error()
                << "; falling back to wall-clock only)\n";
    }
  }
  sched::NativeExecutor ex(1);  // single thread isolates memory behaviour
  bench::trace_attach(ex);      // one worker, so the default 1-ring export
                                // stays single-producer
  util::Xoshiro256 rng(1);

  util::Table t({"workload", "ms", "LLC misses", "L1D read misses"});
  // Transposition: MO-MT vs naive strided.
  {
    const std::uint64_t n = smoke ? 256 : 2048;
    auto a = ex.make_buf<double>(n * n);
    auto out = ex.make_buf<double>(n * n);
    for (auto& v : a.raw()) v = rng.uniform();
    auto warm = measure([&] { algo::mo_transpose(ex, a.ref(), out.ref(), n); });
    (void)warm;
    auto mo = measure([&] { algo::mo_transpose(ex, a.ref(), out.ref(), n); });
    auto naive =
        measure([&] { algo::naive_transpose(ex, a.ref(), out.ref(), n); });
    t.add_row({"MO-MT n=2048", util::Table::fmt(mo.ms, "%.1f"),
               fmt_opt(mo.llc_misses), fmt_opt(mo.l1d_misses)});
    t.add_row({"naive transpose n=2048", util::Table::fmt(naive.ms, "%.1f"),
               fmt_opt(naive.llc_misses), fmt_opt(naive.l1d_misses)});
  }
  // GEP: I-GEP vs the k-major loop.
  {
    const std::uint64_t n = smoke ? 128 : 512;
    auto buf = ex.make_buf<double>(n * n);
    using Mat = sched::MatView<sched::NatRef<double>>;
    for (auto& v : buf.raw()) v = rng.uniform();
    auto igep = measure([&] {
      algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n),
                                              32);
    });
    for (auto& v : buf.raw()) v = rng.uniform();
    auto loop = measure([&] {
      algo::gep_loop<algo::FloydWarshallInstance>(ex,
                                                  Mat::full(buf.ref(), n, n));
    });
    t.add_row({"I-GEP FW n=512", util::Table::fmt(igep.ms, "%.1f"),
               fmt_opt(igep.llc_misses), fmt_opt(igep.l1d_misses)});
    t.add_row({"GEP loop FW n=512", util::Table::fmt(loop.ms, "%.1f"),
               fmt_opt(loop.llc_misses), fmt_opt(loop.l1d_misses)});
  }
  t.print(std::cout);
  simd_counter_validation(smoke);
  return 0;
}
