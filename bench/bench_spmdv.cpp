// Experiment: Theorem 4 / Figure 4 -- MO-SpM-DV.
//
// Reproduced claims:
//   (1) grid matrices (n^(1/2)-edge separator, eps = 1/2) reordered by the
//       separator tree: O((n/q_i)(1/B_i + 1/C_i^(1/2))) misses per level --
//       near-scan behaviour;
//   (2) trees (eps = 0, centroid separators): even closer to a pure scan;
//   (3) negative control: a random matrix (no separator theorem) misses
//       roughly once per nonzero at n >> C -- the separator hypothesis is
//       doing real work;
//   (4) scrambling the grid's separator order destroys the bound.
#include <cmath>
#include <iostream>

#include "algo/graphgen.hpp"
#include "algo/spmdv.hpp"
#include "bench/common.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"

using namespace obliv;

namespace {

std::uint64_t run_case(const hm::MachineConfig& cfg,
                       const algo::SparseMatrix& a, std::uint32_t level,
                       sched::RunMetrics* out_metrics = nullptr) {
  sched::SimExecutor ex(cfg);
  bench::trace_attach(ex);
  auto av = ex.make_buf<algo::SpmEntry>(a.nnz());
  auto a0 = ex.make_buf<std::uint64_t>(a.n + 1);
  auto xv = ex.make_buf<double>(a.n);
  auto yv = ex.make_buf<double>(a.n);
  av.raw() = a.av;
  a0.raw() = a.a0;
  for (auto& v : xv.raw()) v = 1.0;
  const auto m = ex.run(4 * a.n, [&] {
    algo::mo_spmdv(ex, av.ref(), a0.ref(), xv.ref(), yv.ref());
  });
  if (out_metrics) *out_metrics = m;
  return m.level_max_misses[level - 1];
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Theorem 4 / Figure 4: MO-SpM-DV");
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  bench::print_machine(cfg);

  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    bench::Series grid{"grid (eps=1/2, reordered) L" + std::to_string(lvl) +
                       " misses vs (n/q)(1/B + 1/sqrt(C))"};
    bench::Series tree{"tree (eps=0, centroid order) L" +
                       std::to_string(lvl) + " misses vs (n/q)(1/B)"};
    for (std::uint64_t side : bench::sweep(smoke, {48u, 96u, 144u, 192u})) {
      const std::uint64_t n = side * side;
      const double q = cfg.caches_at(lvl);
      grid.add(double(n),
               double(run_case(cfg, algo::grid_matrix_reordered(side), lvl)),
               (double(n) / q) * (1.0 / cfg.block(lvl) +
                                  1.0 / std::sqrt(double(cfg.capacity(lvl)))));
      tree.add(double(n),
               double(run_case(cfg, algo::tree_matrix_reordered(n), lvl)),
               (double(n) / q) * (1.0 / cfg.block(lvl)));
    }
    bench::print_series(grid);
    bench::print_series(tree);
  }

  // Ablation: separator order vs row-major vs scrambled, and the random
  // (expander) control -- L1 misses per nonzero.
  bench::print_header("Ablation: ordering & separator structure (L1)");
  const std::uint64_t side = smoke ? 48 : 192;
  util::Table t({"matrix (n=" + std::to_string(side * side) + ")",
                 "L1 misses", "misses/nnz"});
  auto add_row = [&](const std::string& name, const algo::SparseMatrix& a) {
    const std::uint64_t misses = run_case(cfg, a, 1);
    t.add_row({name, util::Table::fmt(misses),
               util::Table::fmt(double(misses) / double(a.nnz()), "%.4f")});
  };
  add_row("grid, separator order", algo::grid_matrix_reordered(side));
  add_row("grid, row-major order", algo::grid_matrix(side));
  {
    algo::SparseMatrix g = algo::grid_matrix(side);
    std::vector<std::uint64_t> scramble(g.n);
    for (std::uint64_t i = 0; i < g.n; ++i) scramble[i] = i;
    util::Xoshiro256 rng(7);
    for (std::uint64_t i = g.n; i > 1; --i) {
      std::swap(scramble[i - 1], scramble[rng.below(i)]);
    }
    add_row("grid, scrambled order", algo::permute_matrix(g, scramble));
  }
  add_row("random expander (control)", algo::random_matrix(side * side, 4));
  t.print(std::cout);
  return 0;
}
