// Kernel-family microbenchmarks shared by bench_wallclock (wall-clock
// scalar-vs-auto rows) and bench_native_cache (hardware-counter IPC and
// cache-miss validation).  One entry per vectorized family, always timed
// through the runtime dispatcher so simd::ScopedMode selects the path
// under test.
//
// Working sets are L2-resident: these rows answer "what do the vector
// lanes buy on the ALU-bound leaves", not "how fast is DRAM".
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/spmdv.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace obliv::bench {

/// One kernel-family microbenchmark: `run` executes `iters` dispatcher
/// calls over `n`-element arrays; ns/op is per element.
struct KernelBench {
  std::string name;
  std::uint64_t n = 0;
  std::uint64_t iters = 0;
  std::function<void()> run;
};

inline std::vector<KernelBench> kernel_benches(bool smoke) {
  const std::uint64_t n = smoke ? 1u << 10 : 1u << 14;
  const std::uint64_t iters = smoke ? 8 : 128;
  util::Xoshiro256 rng(11);
  std::vector<KernelBench> k;
  {
    auto src = std::make_shared<std::vector<double>>(2 * n);
    auto dst = std::make_shared<std::vector<double>>(n);
    for (auto& v : *src) v = rng.uniform();
    k.push_back({"scan:pair_sum", n, iters, [src, dst, n, iters] {
                   for (std::uint64_t r = 0; r < iters; ++r) {
                     simd::pair_sum_f64(src->data(), dst->data(), n);
                   }
                 }});
  }
  {
    auto t = std::make_shared<std::vector<double>>(n);
    auto v = std::make_shared<std::vector<double>>(2 * n);
    for (auto& x : *t) x = rng.uniform();
    for (auto& x : *v) x = rng.uniform();
    k.push_back({"scan:expand", n, iters, [t, v, n, iters] {
                   for (std::uint64_t r = 0; r < iters; ++r) {
                     simd::scan_expand_f64(t->data(), v->data(), 1, n);
                   }
                 }});
  }
  {
    auto ra = std::make_shared<std::vector<double>>(n);
    auto ia = std::make_shared<std::vector<double>>(n);
    auto rb = std::make_shared<std::vector<double>>(n);
    auto ib = std::make_shared<std::vector<double>>(n);
    auto wre = std::make_shared<std::vector<double>>(n);
    auto wim = std::make_shared<std::vector<double>>(n);
    for (auto& x : *ra) x = rng.uniform();
    for (auto& x : *ia) x = rng.uniform();
    for (auto& x : *rb) x = rng.uniform();
    for (auto& x : *ib) x = rng.uniform();
    for (std::uint64_t j = 0; j < n; ++j) {
      (*wre)[j] = std::cos(0.001 * static_cast<double>(j));
      (*wim)[j] = std::sin(0.001 * static_cast<double>(j));
    }
    k.push_back({"fft:butterfly", n, iters,
                 [ra, ia, rb, ib, wre, wim, n, iters] {
                   for (std::uint64_t r = 0; r < iters; ++r) {
                     simd::butterfly_f64(ra->data(), ia->data(), rb->data(),
                                         ib->data(), wre->data(), wim->data(),
                                         n);
                   }
                 }});
  }
  {
    auto y = std::make_shared<std::vector<double>>(n);
    auto v = std::make_shared<std::vector<double>>(n);
    for (auto& x : *y) x = rng.uniform() + 1.0;
    for (auto& x : *v) x = rng.uniform();
    // min-updates converge, so repetitions time the same all-compare path.
    k.push_back({"gep:fw_min", n, iters, [y, v, n, iters] {
                   for (std::uint64_t r = 0; r < iters; ++r) {
                     simd::fw_min_f64(y->data(), v->data(), 0.5, n);
                   }
                 }});
  }
  {
    auto y = std::make_shared<std::vector<double>>(n);
    auto v = std::make_shared<std::vector<double>>(n);
    for (auto& x : *y) x = rng.uniform();
    for (auto& x : *v) x = rng.uniform();
    // Alternating-sign updates keep y bounded across repetitions.
    k.push_back({"gep:axpy", n, iters, [y, v, n, iters] {
                   for (std::uint64_t r = 0; r < iters; ++r) {
                     simd::axpy_f64(y->data(), v->data(),
                                    r % 2 == 0 ? 1e-3 : -1e-3, n);
                   }
                 }});
  }
  {
    auto e = std::make_shared<std::vector<algo::SpmEntry>>(n);
    auto x = std::make_shared<std::vector<double>>(n);
    auto sink = std::make_shared<double>(0.0);
    for (auto& v : *x) v = rng.uniform();
    for (std::uint64_t i = 0; i < n; ++i) {
      (*e)[i] = {rng() % n, rng.uniform()};
    }
    k.push_back({"spmdv:dot", n, iters, [e, x, sink, n, iters] {
                   for (std::uint64_t r = 0; r < iters; ++r) {
                     *sink += simd::dot_strided_f64(&(*e)[0].col, &(*e)[0].val,
                                                    2, x->data(), n);
                   }
                 }});
  }
  {
    auto base = std::make_shared<std::vector<double>>(n);
    auto idx = std::make_shared<std::vector<std::uint64_t>>(n);
    auto dst = std::make_shared<std::vector<double>>(n);
    for (auto& v : *base) v = rng.uniform();
    for (auto& i : *idx) i = rng() % n;
    k.push_back({"transpose:gather", n, iters, [base, idx, dst, n, iters] {
                   for (std::uint64_t r = 0; r < iters; ++r) {
                     simd::gather_f64(base->data(), idx->data(), dst->data(),
                                      n);
                   }
                 }});
  }
  return k;
}

}  // namespace obliv::bench
