// Experiment: Section II's scheduling-tension claim + DESIGN.md ablations.
//
// The paper argues that the "proportionate slice" strategy (each core uses
// a 1/p'_i slice of every higher-level cache, as in the analyses of [14],
// [15]) wastes the shared levels, while SB anchoring assigns whole tasks to
// whole caches.  In this deterministic simulator parallel siblings execute
// depth-first, so the *interleaving* pollution of shared caches is not
// visible; what is visible -- and reported here -- is the locality loss at
// the anchoring level itself: slice mode scatters space-bounded tasks
// round-robin over cores, destroying the reuse that anchoring guarantees
// (L1 misses grow by the factor the paper predicts per level).
//
// Also ablated: CGC's B_1-boundary rounding (Section III's ping-ponging
// discussion): with rounding disabled, segment boundaries straddle
// coherence blocks and writes ping-pong between L1s.
#include <iostream>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/sort.hpp"
#include "bench/common.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

using Ref = sched::SimRef<double>;
using Mat = sched::MatView<Ref>;

sched::RunMetrics run_gep(const hm::MachineConfig& cfg, bool slice,
                          std::uint64_t n) {
  sched::SimPolicy policy;
  policy.slice_mode = slice;
  sched::SimExecutor ex(cfg, policy);
  auto buf = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(1);
  for (auto& v : buf.raw()) v = rng.uniform();
  return ex.run(n * n, [&] {
    algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n));
  });
}

sched::RunMetrics run_sort(const hm::MachineConfig& cfg, bool slice,
                           std::uint64_t n) {
  sched::SimPolicy policy;
  policy.slice_mode = slice;
  sched::SimExecutor ex(cfg, policy);
  auto buf = ex.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(2);
  for (auto& v : buf.raw()) v = rng();
  return ex.run(4 * n, [&] { algo::spms_sort(ex, buf.ref()); });
}

}  // namespace

int main() {
  bench::print_header("Scheduler ablations (Section II tension, DESIGN.md)");
  // 16 cores, 4 L2 caches: anchoring has real choices to make.
  const hm::MachineConfig cfg("abl", {hm::LevelSpec{256, 8, 1},
                                      hm::LevelSpec{2048, 8, 4},
                                      hm::LevelSpec{32768, 16, 4}});
  bench::print_machine(cfg);

  {
    util::Table t({"workload", "L1 max misses (SB)", "L1 max misses (slice)",
                   "slice/SB"});
    for (std::uint64_t n : {64u, 128u, 256u}) {
      const auto sb = run_gep(cfg, false, n);
      const auto sl = run_gep(cfg, true, n);
      t.add_row({"I-GEP FW n=" + std::to_string(n),
                 util::Table::fmt(sb.level_max_misses[0]),
                 util::Table::fmt(sl.level_max_misses[0]),
                 util::Table::fmt(double(sl.level_max_misses[0]) /
                                      double(sb.level_max_misses[0]),
                                  "%.2f")});
    }
    for (std::uint64_t n : {1u << 14, 1u << 16}) {
      const auto sb = run_sort(cfg, false, n);
      const auto sl = run_sort(cfg, true, n);
      t.add_row({"SPMS n=" + std::to_string(n),
                 util::Table::fmt(sb.level_max_misses[0]),
                 util::Table::fmt(sl.level_max_misses[0]),
                 util::Table::fmt(double(sl.level_max_misses[0]) /
                                      double(sb.level_max_misses[0]),
                                  "%.2f")});
    }
    std::cout << "\n-- SB anchoring vs proportionate slice --\n";
    t.print(std::cout);
    std::cout << "(shared-level interleaving pollution is not observable "
                 "under the simulator's\n depth-first sibling execution; "
                 "see DESIGN.md approximation notes)\n";
  }

  // CGC=>SB level-choice ablation (Section III-C): t = max(i, j) vs the
  // naive fit-only t = i.  The j term matters exactly when there are fewer
  // subtasks than caches at the fitting level: the paper's rule anchors
  // each subtask *higher*, so its shadow keeps many cores for nested CGC
  // parallelism; fit-only pins each subtask to one L1 and strands the rest
  // of the machine.  Microbench: m small subtasks with tiny space bounds,
  // each running an inner pfor over `inner` elements (16-core machine).
  {
    util::Table t({"m subtasks", "span (t=max(i,j))", "span (t=i only)",
                   "fit-only/paper"});
    const std::uint64_t inner = 1 << 16;
    for (std::uint64_t m : {2u, 4u, 8u, 16u}) {
      std::uint64_t span[2];
      for (int mode = 0; mode < 2; ++mode) {
        sched::SimPolicy policy;
        policy.cgcsb_fit_only = (mode == 1);
        sched::SimExecutor ex(hm::MachineConfig::three_level(4, 4), policy);
        span[mode] = ex.run(1ull << 40, [&] {
          ex.cgc_sb_pfor(m, /*space=*/64, [&](std::uint64_t) {
            ex.cgc_pfor(0, inner, 1,
                        [&](std::uint64_t lo, std::uint64_t hi) {
                          ex.tick(hi - lo);
                        });
          });
        }).span;
      }
      t.add_row({util::Table::fmt(std::uint64_t(m)),
                 util::Table::fmt(span[0]), util::Table::fmt(span[1]),
                 util::Table::fmt(double(span[1]) / double(span[0]),
                                  "%.2f")});
    }
    std::cout << "\n-- CGC=>SB anchoring level: max(i,j) vs fit-only --\n";
    t.print(std::cout);
  }

  // CGC block-boundary rounding ablation: 6 cores make ceil(n/6)-sized
  // chunks that straddle B_1 = 8-word blocks when rounding is off.
  {
    util::Table t({"n (x20 passes)", "pingpong (B1-aligned)",
                   "pingpong (unaligned)"});
    for (std::uint64_t n : {1000u, 4000u, 16000u}) {
      std::uint64_t pp[2] = {0, 0};
      for (int mode = 0; mode < 2; ++mode) {
        sched::SimPolicy policy;
        policy.respect_block_boundaries = (mode == 0);
        sched::SimExecutor ex(hm::MachineConfig::shared_l2(6), policy);
        auto buf = ex.make_buf<double>(n);
        for (int rep = 0; rep < 20; ++rep) {
          pp[mode] += ex.run(3 * n, [&] {
            auto v = buf.ref();
            ex.cgc_pfor_each(0, n, 1,
                             [&](std::uint64_t k) { v.store(k, 1.0); });
          }).pingpong;
        }
      }
      t.add_row({util::Table::fmt(std::uint64_t(n)), util::Table::fmt(pp[0]),
                 util::Table::fmt(pp[1])});
    }
    std::cout << "\n-- CGC B_1-boundary rounding vs naive chunking --\n";
    t.print(std::cout);
  }
  return 0;
}
