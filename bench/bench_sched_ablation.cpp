// Experiment: Section II's scheduling-tension claim + DESIGN.md ablations.
//
// The paper argues that the "proportionate slice" strategy (each core uses
// a 1/p'_i slice of every higher-level cache, as in the analyses of [14],
// [15]) wastes the shared levels, while SB anchoring assigns whole tasks to
// whole caches.  In this deterministic simulator parallel siblings execute
// depth-first, so the *interleaving* pollution of shared caches is not
// visible; what is visible -- and reported here -- is the locality loss at
// the anchoring level itself: slice mode scatters space-bounded tasks
// round-robin over cores, destroying the reuse that anchoring guarantees
// (L1 misses grow by the factor the paper predicts per level).
//
// Also ablated: CGC's B_1-boundary rounding (Section III's ping-ponging
// discussion): with rounding disabled, segment boundaries straddle
// coherence blocks and writes ping-pong between L1s.
// Finally, a *native* scheduler ablation: the same CGC workloads wall-clock
// timed under the work-stealing backend (per-worker deques, lazy binary
// splitting) vs the legacy shared-queue pool, sweeping the thread count.
// Self-relative speedup (T1/Tp within one backend) isolates scheduler
// overhead from host core count.
#include <iostream>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "bench/common.hpp"
#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

using Ref = sched::SimRef<double>;
using Mat = sched::MatView<Ref>;

sched::RunMetrics run_gep(const hm::MachineConfig& cfg, bool slice,
                          std::uint64_t n) {
  sched::SimPolicy policy;
  policy.slice_mode = slice;
  sched::SimExecutor ex(cfg, policy);
  bench::trace_attach(ex);
  auto buf = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(1);
  for (auto& v : buf.raw()) v = rng.uniform();
  return ex.run(n * n, [&] {
    algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n));
  });
}

sched::RunMetrics run_sort(const hm::MachineConfig& cfg, bool slice,
                           std::uint64_t n) {
  sched::SimPolicy policy;
  policy.slice_mode = slice;
  sched::SimExecutor ex(cfg, policy);
  bench::trace_attach(ex);
  auto buf = ex.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(2);
  for (auto& v : buf.raw()) v = rng();
  return ex.run(4 * n, [&] { algo::spms_sort(ex, buf.ref()); });
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Scheduler ablations (Section II tension, DESIGN.md)");
  // 16 cores, 4 L2 caches: anchoring has real choices to make.
  const hm::MachineConfig cfg("abl", {hm::LevelSpec{256, 8, 1},
                                      hm::LevelSpec{2048, 8, 4},
                                      hm::LevelSpec{32768, 16, 4}});
  bench::print_machine(cfg);

  {
    util::Table t({"workload", "L1 max misses (SB)", "L1 max misses (slice)",
                   "slice/SB"});
    for (std::uint64_t n : bench::sweep(smoke, {64u, 128u, 256u})) {
      const auto sb = run_gep(cfg, false, n);
      const auto sl = run_gep(cfg, true, n);
      t.add_row({"I-GEP FW n=" + std::to_string(n),
                 util::Table::fmt(sb.level_max_misses[0]),
                 util::Table::fmt(sl.level_max_misses[0]),
                 util::Table::fmt(double(sl.level_max_misses[0]) /
                                      double(sb.level_max_misses[0]),
                                  "%.2f")});
    }
    for (std::uint64_t n : bench::sweep(smoke, {1u << 14, 1u << 16}, 1)) {
      const auto sb = run_sort(cfg, false, n);
      const auto sl = run_sort(cfg, true, n);
      t.add_row({"SPMS n=" + std::to_string(n),
                 util::Table::fmt(sb.level_max_misses[0]),
                 util::Table::fmt(sl.level_max_misses[0]),
                 util::Table::fmt(double(sl.level_max_misses[0]) /
                                      double(sb.level_max_misses[0]),
                                  "%.2f")});
    }
    std::cout << "\n-- SB anchoring vs proportionate slice --\n";
    t.print(std::cout);
    std::cout << "(shared-level interleaving pollution is not observable "
                 "under the simulator's\n depth-first sibling execution; "
                 "see DESIGN.md approximation notes)\n";
  }

  // CGC=>SB level-choice ablation (Section III-C): t = max(i, j) vs the
  // naive fit-only t = i.  The j term matters exactly when there are fewer
  // subtasks than caches at the fitting level: the paper's rule anchors
  // each subtask *higher*, so its shadow keeps many cores for nested CGC
  // parallelism; fit-only pins each subtask to one L1 and strands the rest
  // of the machine.  Microbench: m small subtasks with tiny space bounds,
  // each running an inner pfor over `inner` elements (16-core machine).
  {
    util::Table t({"m subtasks", "span (t=max(i,j))", "span (t=i only)",
                   "fit-only/paper"});
    const std::uint64_t inner = smoke ? 1 << 12 : 1 << 16;
    for (std::uint64_t m : bench::sweep(smoke, {2u, 4u, 8u, 16u})) {
      std::uint64_t span[2];
      for (int mode = 0; mode < 2; ++mode) {
        sched::SimPolicy policy;
        policy.cgcsb_fit_only = (mode == 1);
        sched::SimExecutor ex(hm::MachineConfig::three_level(4, 4), policy);
        bench::trace_attach(ex);
        span[mode] = ex.run(1ull << 40, [&] {
          ex.cgc_sb_pfor(m, /*space=*/64, [&](std::uint64_t) {
            ex.cgc_pfor(0, inner, 1,
                        [&](std::uint64_t lo, std::uint64_t hi) {
                          ex.tick(hi - lo);
                        });
          });
        }).span;
      }
      t.add_row({util::Table::fmt(std::uint64_t(m)),
                 util::Table::fmt(span[0]), util::Table::fmt(span[1]),
                 util::Table::fmt(double(span[1]) / double(span[0]),
                                  "%.2f")});
    }
    std::cout << "\n-- CGC=>SB anchoring level: max(i,j) vs fit-only --\n";
    t.print(std::cout);
  }

  // CGC block-boundary rounding ablation: 6 cores make ceil(n/6)-sized
  // chunks that straddle B_1 = 8-word blocks when rounding is off.
  {
    util::Table t({"n (x20 passes)", "pingpong (B1-aligned)",
                   "pingpong (unaligned)"});
    for (std::uint64_t n : bench::sweep(smoke, {1000u, 4000u, 16000u})) {
      std::uint64_t pp[2] = {0, 0};
      for (int mode = 0; mode < 2; ++mode) {
        sched::SimPolicy policy;
        policy.respect_block_boundaries = (mode == 0);
        sched::SimExecutor ex(hm::MachineConfig::shared_l2(6), policy);
        bench::trace_attach(ex);
        auto buf = ex.make_buf<double>(n);
        for (int rep = 0; rep < 20; ++rep) {
          pp[mode] += ex.run(3 * n, [&] {
            auto v = buf.ref();
            ex.cgc_pfor_each(0, n, 1,
                             [&](std::uint64_t k) { v.store(k, 1.0); });
          }).pingpong;
        }
      }
      t.add_row({util::Table::fmt(std::uint64_t(n)), util::Table::fmt(pp[0]),
                 util::Table::fmt(pp[1])});
    }
    std::cout << "\n-- CGC B_1-boundary rounding vs naive chunking --\n";
    t.print(std::cout);
  }

  // Native executor ablation: work stealing vs shared queue, wall clock.
  {
    const int reps = smoke ? 1 : 3;
    const std::vector<unsigned> thread_counts =
        bench::sweep(smoke, {1u, 2u, 4u, 8u});
    util::Table t({"workload", "threads", "steal ns/op", "steal T1/Tp",
                   "sharedq ns/op", "sharedq T1/Tp"});
    const auto sweep = [&](const std::string& name,
                           const std::function<std::function<void()>(
                               sched::NativeExecutor&)>& make) {
      double base_steal = 0, base_sq = 0;
      for (unsigned threads : thread_counts) {
        sched::NativeExecutor ws(threads, 1 << 12,
                                 sched::SchedMode::kWorkSteal);
        auto run_ws = make(ws);
        const double ns_ws = bench::median_ns(reps, run_ws);
        sched::NativeExecutor sq(threads, 1 << 12,
                                 sched::SchedMode::kSharedQueue);
        auto run_sq = make(sq);
        const double ns_sq = bench::median_ns(reps, run_sq);
        if (threads == 1) {
          base_steal = ns_ws;
          base_sq = ns_sq;
        }
        t.add_row({name, util::Table::fmt(std::uint64_t(threads)),
                   util::Table::fmt(ns_ws, "%.0f"),
                   util::Table::fmt(base_steal / ns_ws, "%.3f"),
                   util::Table::fmt(ns_sq, "%.0f"),
                   util::Table::fmt(base_sq / ns_sq, "%.3f")});
      }
    };
    sweep("scan n=2^19", [](sched::NativeExecutor& ex) {
      auto buf = std::make_shared<sched::NatBuf<double>>(1u << 19);
      auto scratch = std::make_shared<sched::NatBuf<double>>(1u << 19);
      util::Xoshiro256 rng(7);
      for (auto& v : buf->raw()) v = rng.uniform();
      return std::function<void()>([&ex, buf, scratch] {
        algo::mo_scan_inclusive(ex, buf->ref(), scratch->ref(),
                                [](double a, double b) { return a + b; });
      });
    });
    sweep("MT n=512", [](sched::NativeExecutor& ex) {
      const std::uint64_t n = 512;
      auto a = std::make_shared<sched::NatBuf<double>>(n * n);
      auto out = std::make_shared<sched::NatBuf<double>>(n * n);
      util::Xoshiro256 rng(8);
      for (auto& v : a->raw()) v = rng.uniform();
      return std::function<void()>([&ex, a, out, n] {
        algo::mo_transpose(ex, a->ref(), out->ref(), n);
      });
    });
    std::cout << "\n-- native scheduler: work stealing vs shared queue --\n";
    t.print(std::cout);
    std::cout << "(self-relative speedup T1/Tp; on a host with fewer cores "
                 "than threads the\n column reads as scheduling overhead -- "
                 "higher is still better)\n";
  }
  return 0;
}
