// Experiment: Table II row "Prefix sum" / Section III-A scans.
//
// Reproduced claims:
//   (1) MO: Theta(n/(q_i B_i)) misses per level, Theta(n/p) parallel steps
//       with O(B_1 log n) span;
//   (2) NO: Theta(log p) communication for the tree phase on M(p, B) once
//       each processor's slice is local (we report the measured curve).
#include <cmath>
#include <iostream>

#include "algo/scan.hpp"
#include "bench/common.hpp"
#include "hm/config.hpp"
#include "no/wrappers.hpp"
#include "sched/sim_executor.hpp"

using namespace obliv;

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Table II row 1: prefix sums");
  const hm::MachineConfig cfg = hm::MachineConfig::three_level(4, 4);
  bench::print_machine(cfg);

  std::vector<bench::Series> miss(cfg.cache_levels());
  for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
    miss[lvl - 1].name = "scan L" + std::to_string(lvl) +
                         " misses vs n/(q_i B_i)";
  }
  bench::Series span{"scan span vs n/p + B_1 log2 n"};
  for (std::uint64_t n :
       bench::sweep(smoke, {1u << 14, 1u << 16, 1u << 18, 1u << 20})) {
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto buf = ex.make_buf<std::int64_t>(n);
    for (auto& v : buf.raw()) v = 1;
    const auto m = ex.run(2 * n, [&] { algo::mo_prefix_sum(ex, buf.ref()); });
    for (std::uint32_t lvl = 1; lvl <= cfg.cache_levels(); ++lvl) {
      miss[lvl - 1].add(double(n), double(m.level_max_misses[lvl - 1]),
                        double(n) / (cfg.caches_at(lvl) * cfg.block(lvl)));
    }
    span.add(double(n), double(m.span),
             double(n) / cfg.cores() +
                 double(cfg.block(1)) * std::log2(double(n)));
  }
  for (const auto& s : miss) bench::print_series(s);
  bench::print_series(span);

  // NO prefix sums: communication vs log-ish growth on M(p, B).
  {
    util::Table t({"n", "comm (p=8,B=4)", "supersteps"});
    for (std::uint64_t n : bench::sweep(smoke, {1u << 10, 1u << 12, 1u << 14})) {
      no::NoMachine mach(32, {{8, 4}});
      bench::trace_attach(mach);
      std::vector<std::uint64_t> xs(n, 1);
      no::no_prefix_sum(mach, xs);
      t.add_row({util::Table::fmt(std::uint64_t(n)),
                 util::Table::fmt(mach.communication(0)),
                 util::Table::fmt(mach.supersteps())});
    }
    std::cout << "\n-- NO prefix sums --\n";
    t.print(std::cout);
  }
  return 0;
}
