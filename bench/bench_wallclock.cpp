// Wall-clock benchmarks of the MO algorithms on the *native* executor
// (real std::threads on the host machine), for both scheduler backends:
//
//   sched=steal    work-stealing deques + lazy binary splitting (default)
//   sched=sharedq  the original global mutex + condvar queue (baseline)
//
// For every workload the harness sweeps threads in {1,2,4,8} under each
// backend, reports min-of-K ns per operation and the self-relative speedup
// (T1/Tp within the same backend -- the portable quantity on any host), and
// dumps every record to BENCH_wallclock.json so the perf trajectory is
// trackable across PRs.  On a host with fewer cores than the thread count,
// multi-thread rows measure scheduler overhead instead of parallel speedup
// -- exactly the contention the work-stealing rewrite is meant to
// eliminate, so the comparison is still meaningful there.
//
// Measurement discipline for noisy (shared/virtualised) hosts: all
// (backend, threads) cells of a workload are timed round-robin inside each
// repetition, so every cell samples the same interference windows, and the
// reported figure is the *minimum* across repetitions -- external load only
// ever adds time, so the min is the best estimate of intrinsic cost.
// Sequential per-cell sweeps (cells minutes apart) would let a load burst
// corrupt one backend's column and invert the comparison.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/graphgen.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/spmdv.hpp"
#include "algo/transpose.hpp"
#include "bench/common.hpp"
#include "bench/simd_kernel_benches.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "sched/native_executor.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

using namespace obliv;

namespace {

using Exec = sched::NativeExecutor;
using Mat = sched::MatView<sched::NatRef<double>>;

struct Workload {
  std::string name;
  std::uint64_t n;
  // Binds one timed run to `ex`.  Buffers are allocated ONCE per workload
  // (captured by the factory) and shared by every (backend, threads) cell:
  // per-cell allocations would give each cell its own page-placement /
  // hugepage luck -- a bias that sticks for the whole run and that no
  // amount of repetition averages out of a cross-cell comparison.
  std::function<std::function<void()>(Exec&)> make;
};

std::vector<Workload> workloads(bool smoke) {
  std::vector<Workload> w;
  {
    const std::uint64_t n = smoke ? 1u << 16 : 1u << 20;
    auto buf = std::make_shared<sched::NatBuf<double>>(n);
    auto scratch = std::make_shared<sched::NatBuf<double>>(n);
    util::Xoshiro256 rng(1);
    for (auto& v : buf->raw()) v = rng.uniform();
    // In-place scans compound across repetitions (values eventually reach
    // inf); x86 adds run at full speed regardless, so timings are unbiased.
    w.push_back({"scan", n, [buf, scratch](Exec& ex) {
                   return std::function<void()>([&ex, buf, scratch] {
                     algo::mo_scan_inclusive(ex, buf->ref(), scratch->ref(),
                                             [](double a, double b) {
                                               return a + b;
                                             });
                   });
                 }});
  }
  {
    const std::uint64_t n = smoke ? 256 : 1024;
    auto a = std::make_shared<sched::NatBuf<double>>(n * n);
    auto out = std::make_shared<sched::NatBuf<double>>(n * n);
    util::Xoshiro256 rng(2);
    for (auto& v : a->raw()) v = rng.uniform();
    w.push_back({"transpose", n, [a, out, n](Exec& ex) {
                   return std::function<void()>([&ex, a, out, n] {
                     algo::mo_transpose(ex, a->ref(), out->ref(), n);
                   });
                 }});
  }
  {
    const std::uint64_t n = smoke ? 64 : 128;
    auto c = std::make_shared<sched::NatBuf<double>>(n * n);
    auto a = std::make_shared<sched::NatBuf<double>>(n * n);
    auto b = std::make_shared<sched::NatBuf<double>>(n * n);
    util::Xoshiro256 rng(3);
    for (auto& v : a->raw()) v = rng.uniform();
    for (auto& v : b->raw()) v = rng.uniform();
    w.push_back({"matmul", n, [a, b, c, n](Exec& ex) {
                   return std::function<void()>([&ex, a, b, c, n] {
                     algo::mo_matmul(ex, Mat::full(c->ref(), n, n),
                                     Mat::full(a->ref(), n, n),
                                     Mat::full(b->ref(), n, n), 32);
                   });
                 }});
  }
  {
    const std::uint64_t n = smoke ? 1u << 12 : 1u << 16;
    auto buf = std::make_shared<sched::NatBuf<std::uint64_t>>(n);
    w.push_back({"sort", n, [buf](Exec& ex) {
                   return std::function<void()>([&ex, buf] {
                     util::Xoshiro256 rng(4);
                     for (auto& v : buf->raw()) v = rng();
                     algo::spms_sort(ex, buf->ref());
                   });
                 }});
  }
  {
    const std::uint64_t n = smoke ? 1u << 12 : 1u << 16;
    auto buf = std::make_shared<sched::NatBuf<algo::cplx>>(n);
    w.push_back({"fft", n, [buf](Exec& ex) {
                   return std::function<void()>([&ex, buf] {
                     util::Xoshiro256 rng(5);
                     for (auto& v : buf->raw()) {
                       v = algo::cplx(rng.uniform(), 0.0);
                     }
                     algo::mo_fft(ex, buf->ref());
                   });
                 }});
  }
  {
    const std::uint64_t n = smoke ? 48 : 128;
    auto x = std::make_shared<sched::NatBuf<double>>(n * n);
    w.push_back({"igep-fw", n, [x, n](Exec& ex) {
                   return std::function<void()>([&ex, x, n] {
                     util::Xoshiro256 rng(6);
                     for (auto& v : x->raw()) v = rng.uniform() + 0.01;
                     algo::igep<algo::FloydWarshallInstance>(
                         ex, Mat::full(x->ref(), n, n));
                   });
                 }});
  }
  {
    const std::uint64_t side = smoke ? 32 : 128;
    auto m = std::make_shared<algo::SparseMatrix>(
        algo::grid_matrix_reordered(side));
    auto av = std::make_shared<sched::NatBuf<algo::SpmEntry>>(m->nnz());
    auto a0 = std::make_shared<sched::NatBuf<std::uint64_t>>(m->n + 1);
    auto xv = std::make_shared<sched::NatBuf<double>>(m->n);
    auto yv = std::make_shared<sched::NatBuf<double>>(m->n);
    av->raw() = m->av;
    a0->raw() = m->a0;
    util::Xoshiro256 rng(7);
    for (auto& v : xv->raw()) v = rng.uniform();
    w.push_back({"spmdv", m->n, [av, a0, xv, yv](Exec& ex) {
                   return std::function<void()>([&ex, av, a0, xv, yv] {
                     algo::mo_spmdv(ex, av->ref(), a0->ref(), xv->ref(),
                                    yv->ref());
                   });
                 }});
  }
  return w;
}

/// `--trace` mode: the same workloads on the work-steal backend with an
/// obs::Tracer attached vs detached, reps interleaved traced/untraced so
/// ambient load hits both columns equally.  Exports the last traced run of
/// the first workload as a Chrome trace.
int trace_overhead(bool smoke, int reps, const std::string& trace_path) {
  bench::print_header("obs tracing overhead: work-steal backend");
  const unsigned threads = 4;
  std::printf("threads = %u, tracing compiled %s\n", threads,
              obs::kTracingCompiledIn ? "in" : "out");
  util::Table t({"workload", "untraced ns/op", "traced ns/op", "overhead"});
  bool wrote = false;
  for (const auto& w : workloads(smoke)) {
    Exec ex(threads, 1 << 12, sched::SchedMode::kWorkSteal);
    auto run = w.make(ex);
    run();  // warm-up
    obs::Tracer tracer(threads);
    double off = 0, on = 0;
    for (int r = 0; r < reps; ++r) {
      const double a = bench::time_once_ns(run);
      ex.set_tracer(&tracer);
      const double b = bench::time_once_ns(run);
      ex.set_tracer(nullptr);
      if (r == 0 || a < off) off = a;
      if (r == 0 || b < on) on = b;
    }
    t.add_row({w.name, util::Table::fmt(off, "%.0f"),
               util::Table::fmt(on, "%.0f"),
               util::Table::fmt(100.0 * (on - off) / off, "%+.1f%%")});
    if (!wrote && obs::kTracingCompiledIn) {
      wrote = obs::write_chrome_trace(trace_path, tracer);
    }
  }
  t.print(std::cout);
  if (wrote) {
    std::cout << "\nfirst workload's traced run -> " << trace_path
              << " (events: spawn/steal/complete per worker)\n";
  }
  return 0;
}

/// `--hist-off-check` mode: the guardrail for the histogram metrics.  A
/// *detached* tracer (the state every untraced run is in) must cost
/// nothing: every histogram site sits behind the executor's `tracer_ !=
/// nullptr` branch.  The measurable upper bound is a tracer attached with
/// events disabled (set_events_enabled(false)): histogram record() calls
/// -- a handful of relaxed atomics -- fire, ring traffic does not.  Same
/// paired-ratio statistics as fault_off_check: per rep the detached /
/// detached / metrics-only cells run back-to-back with alternating order,
/// within-rep ratios aggregate as medians, gate (full mode only) is
/// overhead <= max(1%, A/A noise + 1%), and a failing workload re-measures
/// once before failing for real.
int hist_off_check(bool smoke, int reps) {
  bench::print_header("histogram metrics overhead when no tracer attached");
  const unsigned threads = 4;
  std::printf("threads = %u, tracing compiled %s, gate %s\n", threads,
              obs::kTracingCompiledIn ? "in" : "out",
              smoke ? "off (smoke)" : "on (<= max(1%, A/A noise + 1%))");
  if (!obs::kTracingCompiledIn) {
    std::printf("nothing to measure: trace hooks fold away at compile time\n");
    return 0;
  }
  util::Table t({"workload", "detached ns/op", "A/A noise",
                 "metrics-only ns/op", "overhead"});
  bool gate_ok = true;
  struct Measurement {
    double best_off, best_on, noise_pct, over_pct;
  };
  auto measure = [&](const Workload& w) {
    Exec ex(threads, 1 << 12, sched::SchedMode::kWorkSteal);
    auto run = w.make(ex);
    run();  // warm-up
    obs::Tracer tracer(threads);
    tracer.set_events_enabled(false);
    double best_off = 0, best_on = 0;
    std::vector<double> over_ratios, noise_ratios;
    for (int r = 0; r < reps; ++r) {
      // Alternate the within-rep order: a fixed order hands the same cell
      // the tail of every load burst and biases the comparison.
      double a, a2, b;
      if (r % 2 == 0) {
        a = bench::time_once_ns(run);
        a2 = bench::time_once_ns(run);
        ex.set_tracer(&tracer);
        b = bench::time_once_ns(run);
        ex.set_tracer(nullptr);
      } else {
        ex.set_tracer(&tracer);
        b = bench::time_once_ns(run);
        ex.set_tracer(nullptr);
        a2 = bench::time_once_ns(run);
        a = bench::time_once_ns(run);
      }
      // a2 is adjacent to both a and b in either order; both ratios span
      // the same time distance.
      over_ratios.push_back(b / a2);
      noise_ratios.push_back(a / a2);
      const double off = std::min(a, a2);
      if (r == 0 || off < best_off) best_off = off;
      if (r == 0 || b < best_on) best_on = b;
    }
    auto median = [](std::vector<double> v) {
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    return Measurement{best_off, best_on,
                       100.0 * std::abs(median(noise_ratios) - 1.0),
                       100.0 * (median(over_ratios) - 1.0)};
  };
  auto within = [smoke](const Measurement& m) {
    return smoke || m.over_pct <= std::max(1.0, m.noise_pct + 1.0);
  };
  for (const auto& w : workloads(smoke)) {
    Measurement m = measure(w);
    bool ok = within(m);
    if (!ok) {
      // Confirm before failing: a real hook regression reproduces, a
      // host-load resonance artifact does not.
      m = measure(w);
      ok = within(m);
    }
    gate_ok = gate_ok && ok;
    t.add_row({w.name + (ok ? "" : "  <-- FAIL"),
               util::Table::fmt(m.best_off, "%.0f"),
               util::Table::fmt(m.noise_pct, "%.2f%%"),
               util::Table::fmt(m.best_on, "%.0f"),
               util::Table::fmt(m.over_pct, "%+.2f%%")});
  }
  t.print(std::cout);
  // The metrics-only cells must actually have recorded distributions --
  // otherwise the gate would be vacuously green.
  std::uint64_t hist_count = 0;
  {
    const auto smoke_workloads = workloads(true);
    const auto& w = smoke_workloads.front();
    Exec ex(threads, 1 << 12, sched::SchedMode::kWorkSteal);
    auto run = w.make(ex);
    obs::Tracer tracer(threads);
    tracer.set_events_enabled(false);
    ex.set_tracer(&tracer);
    run();
    ex.set_tracer(nullptr);
    tracer.counters().for_each_histogram(
        [&](const std::string&, const obs::Histogram& h) {
          hist_count += h.count();
        });
  }
  std::printf("histogram samples recorded in metrics-only mode: %llu\n",
              static_cast<unsigned long long>(hist_count));
  if (hist_count == 0) {
    std::printf("\nFAIL: no histogram site fired; the guardrail is vacuous\n");
    return 1;
  }
  if (!gate_ok) {
    std::printf("\nFAIL: histogram metrics exceed the no-tracer budget\n");
    return 1;
  }
  std::printf("\nOK: histogram metrics free when no tracer is attached\n");
  return 0;
}

/// `--fault-off-check` mode: the guardrail for the fault-injection layer.
/// An *inactive* layer (compiled in, no plan attached -- the state every
/// production run is in) must cost nothing: each hook is one pointer load
/// and branch.  An attached-but-inert plan is the measurable upper bound
/// on that cost (same hooks plus one probability load + branch each).
///
/// Statistics for a drifting shared host: per repetition the detached /
/// detached / inert cells run back-to-back (order alternating), and the
/// *ratio* within each repetition is what gets aggregated -- paired runs
/// sit in the same interference window, so host drift divides out of the
/// ratio even when absolute ns/op swings by 2x across the run.  Both
/// ratios compare runs adjacent to the shared middle cell (inert/detached
/// and detached/detached), keeping the time distance -- and therefore the
/// drift exposure -- identical; comparing against the min of the two
/// detached runs instead would bias the denominator low and read pure
/// noise as +overhead.  The reported overhead is the median ratio across
/// reps; the A/A median is the residual pairing-noise floor.  Gate (full
/// mode only): overhead <= max(1%, A/A + 1%).  Smoke mode measures and
/// prints but does not gate.
int fault_off_check(bool smoke, int reps) {
  bench::print_header("fault-injection layer overhead when inactive");
  const unsigned threads = 4;
  std::printf("threads = %u, faults compiled %s, gate %s\n", threads,
              fault::kFaultsCompiledIn ? "in" : "out",
              smoke ? "off (smoke)" : "on (<= max(1%, A/A noise + 1%))");
  if (!fault::kFaultsCompiledIn) {
    std::printf("nothing to measure: hooks fold away at compile time\n");
    return 0;
  }
  util::Table t({"workload", "detached ns/op", "A/A noise", "inert ns/op",
                 "overhead"});
  bool gate_ok = true;
  struct Measurement {
    double best_off, best_on, noise_pct, over_pct;
  };
  auto measure = [&](const Workload& w) {
    Exec ex(threads, 1 << 12, sched::SchedMode::kWorkSteal);
    auto run = w.make(ex);
    run();  // warm-up
    fault::FaultPlan inert(1, fault::FaultOptions::inert());
    double best_off = 0, best_on = 0;
    std::vector<double> over_ratios, noise_ratios;
    for (int r = 0; r < reps; ++r) {
      // Alternate the within-rep order: a fixed order hands the same cell
      // the tail of every load burst and biases the comparison.
      double a, a2, b;
      if (r % 2 == 0) {
        a = bench::time_once_ns(run);
        a2 = bench::time_once_ns(run);
        ex.set_fault_plan(&inert);
        b = bench::time_once_ns(run);
        ex.set_fault_plan(nullptr);
      } else {
        ex.set_fault_plan(&inert);
        b = bench::time_once_ns(run);
        ex.set_fault_plan(nullptr);
        a2 = bench::time_once_ns(run);
        a = bench::time_once_ns(run);
      }
      // a2 is adjacent to both a and b in either order; both ratios span
      // the same time distance.
      over_ratios.push_back(b / a2);
      noise_ratios.push_back(a / a2);
      const double off = std::min(a, a2);
      if (r == 0 || off < best_off) best_off = off;
      if (r == 0 || b < best_on) best_on = b;
    }
    auto median = [](std::vector<double> v) {
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    return Measurement{best_off, best_on,
                       100.0 * std::abs(median(noise_ratios) - 1.0),
                       100.0 * (median(over_ratios) - 1.0)};
  };
  auto within = [smoke](const Measurement& m) {
    return smoke || m.over_pct <= std::max(1.0, m.noise_pct + 1.0);
  };
  for (const auto& w : workloads(smoke)) {
    Measurement m = measure(w);
    bool ok = within(m);
    if (!ok) {
      // Confirm before failing: host load oscillating in resonance with
      // the repetition cadence can push one measurement past the budget.
      // A real hook regression (the +50% steal-counter one this guardrail
      // caught) reproduces; a resonance artifact does not.
      m = measure(w);
      ok = within(m);
    }
    gate_ok = gate_ok && ok;
    t.add_row({w.name + (ok ? "" : "  <-- FAIL"),
               util::Table::fmt(m.best_off, "%.0f"),
               util::Table::fmt(m.noise_pct, "%.2f%%"),
               util::Table::fmt(m.best_on, "%.0f"),
               util::Table::fmt(m.over_pct, "%+.2f%%")});
  }
  t.print(std::cout);
  if (!gate_ok) {
    std::printf("\nFAIL: inactive fault layer exceeds the overhead budget\n");
    return 1;
  }
  std::printf("\nOK: inactive fault layer within budget\n");
  return 0;
}

// ---------------------------------------------------------------------------
// SIMD kernel scaling rows
// ---------------------------------------------------------------------------

// KernelBench + kernel_benches() live in bench/simd_kernel_benches.hpp,
// shared with bench_native_cache's hardware-counter validation section.
using bench::kernel_benches;

/// Default-run section: every kernel family timed under Mode::kAuto (vector
/// when the host supports it) and Mode::kScalar (the OBLIV_SIMD=OFF
/// arithmetic), reps interleaved so both modes sample the same interference
/// windows.  Rows land in BENCH_wallclock.json as bench="simd:<family>",
/// sched="auto"|"scalar"; the printed ratio column is scalar/auto (>1 means
/// the vector path wins) with a geometric mean over families.
void simd_kernel_section(bool smoke, int reps, bench::JsonRecorder& json) {
  bench::print_header("SIMD kernels: scalar vs vector dispatch");
  std::printf("active ISA under kAuto: %s (lane width %u), compiled %s\n",
              simd::active_isa(), simd::lane_width(),
              simd::kSimdCompiledIn ? "in" : "out");
  util::Table t({"kernel", "n", "scalar ns/op", "auto ns/op", "scalar/auto"});
  double log_sum = 0.0;
  std::size_t families = 0;
  for (auto& kb : kernel_benches(smoke)) {
    double best_auto = 0.0, best_scalar = 0.0;
    kb.run();  // warm-up (whatever mode; touches the buffers)
    for (int r = 0; r < reps; ++r) {
      double a, s;
      if (r % 2 == 0) {
        {
          simd::ScopedMode m(simd::Mode::kAuto);
          a = bench::time_once_ns(kb.run);
        }
        {
          simd::ScopedMode m(simd::Mode::kScalar);
          s = bench::time_once_ns(kb.run);
        }
      } else {
        {
          simd::ScopedMode m(simd::Mode::kScalar);
          s = bench::time_once_ns(kb.run);
        }
        {
          simd::ScopedMode m(simd::Mode::kAuto);
          a = bench::time_once_ns(kb.run);
        }
      }
      if (r == 0 || a < best_auto) best_auto = a;
      if (r == 0 || s < best_scalar) best_scalar = s;
    }
    const double ops = static_cast<double>(kb.n) * static_cast<double>(kb.iters);
    const double auto_ns = best_auto / ops, scalar_ns = best_scalar / ops;
    json.add("simd:" + kb.name, "scalar", 1, kb.n, scalar_ns, reps);
    json.add("simd:" + kb.name, "auto", 1, kb.n, auto_ns, reps);
    t.add_row({kb.name, util::Table::fmt(kb.n),
               util::Table::fmt(scalar_ns, "%.3f"),
               util::Table::fmt(auto_ns, "%.3f"),
               util::Table::fmt(scalar_ns / auto_ns, "%.2f")});
    log_sum += std::log(scalar_ns / auto_ns);
    ++families;
  }
  t.print(std::cout);
  std::printf("geomean scalar/auto speedup over %zu families: %.2fx%s\n",
              families, std::exp(log_sum / static_cast<double>(families)),
              simd::vector_active() ? "" : "  (vector path inactive: ~1.0x)");
}

/// `--simd-off-check` mode: the guardrail for the kernel dispatch layer.
/// Mode::kScalar runs the same arithmetic an OBLIV_SIMD=OFF build runs;
/// Mode::kGeneric makes use_kernels() false, so leaves take their pre-kernel
/// generic loops.  The scalar kernel paths must not be materially slower
/// than those generic loops -- otherwise turning SIMD off (or running on a
/// non-vector host) would regress below the pre-SIMD baseline.  Same
/// paired-ratio statistics as --fault-off-check: per rep the generic /
/// generic / scalar cells run back-to-back with alternating order,
/// within-rep ratios aggregate as medians, gate (full mode only) is
/// overhead <= max(5%, A/A noise + 1%) -- 5% because scalar kernels and
/// generic loops are genuinely different code, not one branch apart.
int simd_off_check(bool smoke, int reps) {
  bench::print_header("scalar kernel paths vs pre-kernel generic loops");
  const unsigned threads = 4;
  std::printf("threads = %u, simd compiled %s, gate %s\n", threads,
              simd::kSimdCompiledIn ? "in" : "out",
              smoke ? "off (smoke)" : "on (<= max(5%, A/A noise + 1%))");
  util::Table t({"workload", "generic ns/op", "A/A noise", "scalar ns/op",
                 "overhead"});
  bool gate_ok = true;
  struct Measurement {
    double best_off, best_on, noise_pct, over_pct;
  };
  auto measure = [&](const Workload& w) {
    Exec ex(threads, 1 << 12, sched::SchedMode::kWorkSteal);
    auto run = w.make(ex);
    run();  // warm-up
    double best_off = 0, best_on = 0;
    std::vector<double> over_ratios, noise_ratios;
    for (int r = 0; r < reps; ++r) {
      double a, a2, b;
      if (r % 2 == 0) {
        {
          simd::ScopedMode m(simd::Mode::kGeneric);
          a = bench::time_once_ns(run);
          a2 = bench::time_once_ns(run);
        }
        {
          simd::ScopedMode m(simd::Mode::kScalar);
          b = bench::time_once_ns(run);
        }
      } else {
        {
          simd::ScopedMode m(simd::Mode::kScalar);
          b = bench::time_once_ns(run);
        }
        {
          simd::ScopedMode m(simd::Mode::kGeneric);
          a2 = bench::time_once_ns(run);
          a = bench::time_once_ns(run);
        }
      }
      over_ratios.push_back(b / a2);
      noise_ratios.push_back(a / a2);
      const double off = std::min(a, a2);
      if (r == 0 || off < best_off) best_off = off;
      if (r == 0 || b < best_on) best_on = b;
    }
    auto median = [](std::vector<double> v) {
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    };
    return Measurement{best_off, best_on,
                       100.0 * std::abs(median(noise_ratios) - 1.0),
                       100.0 * (median(over_ratios) - 1.0)};
  };
  auto within = [smoke](const Measurement& m) {
    return smoke || m.over_pct <= std::max(5.0, m.noise_pct + 1.0);
  };
  for (const auto& w : workloads(smoke)) {
    Measurement m = measure(w);
    bool ok = within(m);
    if (!ok) {
      // Confirm before failing (same rationale as fault_off_check): a real
      // scalar-kernel regression reproduces, a load-resonance blip does not.
      m = measure(w);
      ok = within(m);
    }
    gate_ok = gate_ok && ok;
    t.add_row({w.name + (ok ? "" : "  <-- FAIL"),
               util::Table::fmt(m.best_off, "%.0f"),
               util::Table::fmt(m.noise_pct, "%.2f%%"),
               util::Table::fmt(m.best_on, "%.0f"),
               util::Table::fmt(m.over_pct, "%+.2f%%")});
  }
  t.print(std::cout);
  if (!gate_ok) {
    std::printf("\nFAIL: scalar kernel paths regress past the generic loops\n");
    return 1;
  }
  std::printf("\nOK: scalar kernel paths hold up against the generic loops\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // bench_wallclock [--quick | --reps N | --smoke | --trace |
  // --fault-off-check | --hist-off-check | --simd-off-check]: more reps ->
  // tighter minima on a noisy host;
  // --trace measures obs tracing overhead; --fault-off-check gates the
  // inactive fault-injection layer's overhead; --simd-off-check gates the
  // scalar kernel paths against the pre-kernel generic loops.
  int reps = 5;
  bool smoke = false, trace = false, fault_check = false,
       hist_check = false, simd_check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") reps = 3;
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[i + 1]));
    }
    if (arg == "--smoke") {
      smoke = true;
      reps = 1;
    }
    if (arg == "--trace") trace = true;
    if (arg == "--fault-off-check") fault_check = true;
    if (arg == "--hist-off-check") hist_check = true;
    if (arg == "--simd-off-check") simd_check = true;
  }
  if (fault_check) {
    return fault_off_check(smoke, smoke ? 3 : std::max(reps, 15));
  }
  if (simd_check) {
    return simd_off_check(smoke, smoke ? 3 : std::max(reps, 15));
  }
  if (hist_check) {
    return hist_off_check(smoke, smoke ? 3 : std::max(reps, 15));
  }
  if (trace) {
    // Unified trace-output contract: --trace-out= / OBLIV_TRACE_OUT pick
    // the export path; the historical wallclock_trace.json is the default.
    return trace_overhead(
        smoke, smoke ? 1 : std::max(reps, 5),
        obs::resolve_trace_out(argc, argv, "wallclock_trace.json"));
  }
  // Host-aware thread sweep: the canonical {1,2,4,8} rows (comparable
  // across hosts and PRs) plus the host's own core count when it is not
  // already in the list, so a speedup-vs-threads curve always has a point
  // at full hardware concurrency.  On a 1-core host the extra point is
  // already present and the multi-thread rows keep their historical
  // meaning: scheduler overhead under oversubscription.
  std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};
  const unsigned hc = bench::host_concurrency();
  if (!smoke && hc <= 64 &&
      std::find(thread_counts.begin(), thread_counts.end(), hc) ==
          thread_counts.end()) {
    thread_counts.insert(
        std::upper_bound(thread_counts.begin(), thread_counts.end(), hc), hc);
  }
  const std::vector<std::pair<std::string, sched::SchedMode>> backends{
      {"steal", sched::SchedMode::kWorkSteal},
      {"sharedq", sched::SchedMode::kSharedQueue}};

  bench::print_header("Native wall clock: work stealing vs shared queue");
  std::printf(
      "hardware_concurrency = %u, pinned = %s  (with fewer cores than "
      "threads, multi-thread rows\n measure scheduling overhead; "
      "self-relative speedup still ranks the backends)\n",
      hc, bench::threads_pinned() ? "yes" : "no");

  bench::JsonRecorder json("BENCH_wallclock.json");
  for (const auto& w : workloads(smoke)) {
    // One cell per (threads, backend); executors and buffers stay alive for
    // the whole workload so repetitions can interleave across cells.
    struct Cell {
      unsigned threads;
      std::size_t backend;
      std::unique_ptr<Exec> ex;
      std::function<void()> run;
      double best_ns = 0.0;
    };
    std::vector<Cell> cells;
    for (unsigned threads : thread_counts) {
      for (std::size_t bi = 0; bi < backends.size(); ++bi) {
        Cell c{threads, bi,
               std::make_unique<Exec>(threads, 1 << 12, backends[bi].second),
               {}};
        c.run = w.make(*c.ex);
        c.run();  // warm-up
        cells.push_back(std::move(c));
      }
    }
    for (int r = 0; r < reps; ++r) {
      // Alternate sweep direction so every cell sees both neighbours'
      // cache footprints -- fixed ordering would hand each cell a
      // constant (and unequal) warm-cache inheritance.
      for (std::size_t k = 0; k < cells.size(); ++k) {
        Cell& c = cells[r % 2 == 0 ? k : cells.size() - 1 - k];
        const double ns = bench::time_once_ns(c.run);
        if (r == 0 || ns < c.best_ns) c.best_ns = ns;
      }
    }
    util::Table t({"threads", "steal ns/op", "steal T1/Tp", "sharedq ns/op",
                   "sharedq T1/Tp"});
    std::vector<double> base(backends.size(), 0.0);
    for (const auto& c : cells) {
      if (c.threads == 1) base[c.backend] = c.best_ns;
    }
    for (unsigned threads : thread_counts) {
      std::vector<std::string> row{util::Table::fmt(std::uint64_t(threads))};
      for (std::size_t bi = 0; bi < backends.size(); ++bi) {
        for (const auto& c : cells) {
          if (c.threads != threads || c.backend != bi) continue;
          json.add(w.name, backends[bi].first, threads, w.n, c.best_ns, reps);
          row.push_back(util::Table::fmt(c.best_ns, "%.0f"));
          row.push_back(util::Table::fmt(base[bi] / c.best_ns, "%.3f"));
        }
      }
      t.add_row(std::move(row));
    }
    std::cout << "\n-- " << w.name << " (n=" << w.n << ") --\n";
    t.print(std::cout);
  }
  simd_kernel_section(smoke, smoke ? 2 : std::max(reps, 7), json);
  if (!smoke) json.write();  // smoke numbers would pollute the trajectory
  return 0;
}
