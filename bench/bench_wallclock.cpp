// Wall-clock benchmarks of the MO algorithms on the *native* executor
// (real std::threads on the host machine), for both scheduler backends:
//
//   sched=steal    work-stealing deques + lazy binary splitting (default)
//   sched=sharedq  the original global mutex + condvar queue (baseline)
//
// For every workload the harness sweeps threads in {1,2,4,8} under each
// backend, reports min-of-K ns per operation and the self-relative speedup
// (T1/Tp within the same backend -- the portable quantity on any host), and
// dumps every record to BENCH_wallclock.json so the perf trajectory is
// trackable across PRs.  On a host with fewer cores than the thread count,
// multi-thread rows measure scheduler overhead instead of parallel speedup
// -- exactly the contention the work-stealing rewrite is meant to
// eliminate, so the comparison is still meaningful there.
//
// Measurement discipline for noisy (shared/virtualised) hosts: all
// (backend, threads) cells of a workload are timed round-robin inside each
// repetition, so every cell samples the same interference windows, and the
// reported figure is the *minimum* across repetitions -- external load only
// ever adds time, so the min is the best estimate of intrinsic cost.
// Sequential per-cell sweeps (cells minutes apart) would let a load burst
// corrupt one backend's column and invert the comparison.
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "bench/common.hpp"
#include "sched/native_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

using Exec = sched::NativeExecutor;
using Mat = sched::MatView<sched::NatRef<double>>;

struct Workload {
  std::string name;
  std::uint64_t n;
  // Binds one timed run to `ex`.  Buffers are allocated ONCE per workload
  // (captured by the factory) and shared by every (backend, threads) cell:
  // per-cell allocations would give each cell its own page-placement /
  // hugepage luck -- a bias that sticks for the whole run and that no
  // amount of repetition averages out of a cross-cell comparison.
  std::function<std::function<void()>(Exec&)> make;
};

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  {
    auto buf = std::make_shared<sched::NatBuf<double>>(1u << 20);
    auto scratch = std::make_shared<sched::NatBuf<double>>(1u << 20);
    util::Xoshiro256 rng(1);
    for (auto& v : buf->raw()) v = rng.uniform();
    // In-place scans compound across repetitions (values eventually reach
    // inf); x86 adds run at full speed regardless, so timings are unbiased.
    w.push_back({"scan", 1u << 20, [buf, scratch](Exec& ex) {
                   return std::function<void()>([&ex, buf, scratch] {
                     algo::mo_scan_inclusive(ex, buf->ref(), scratch->ref(),
                                             [](double a, double b) {
                                               return a + b;
                                             });
                   });
                 }});
  }
  {
    const std::uint64_t n = 1024;
    auto a = std::make_shared<sched::NatBuf<double>>(n * n);
    auto out = std::make_shared<sched::NatBuf<double>>(n * n);
    util::Xoshiro256 rng(2);
    for (auto& v : a->raw()) v = rng.uniform();
    w.push_back({"transpose", n, [a, out, n](Exec& ex) {
                   return std::function<void()>([&ex, a, out, n] {
                     algo::mo_transpose(ex, a->ref(), out->ref(), n);
                   });
                 }});
  }
  {
    const std::uint64_t n = 128;
    auto c = std::make_shared<sched::NatBuf<double>>(n * n);
    auto a = std::make_shared<sched::NatBuf<double>>(n * n);
    auto b = std::make_shared<sched::NatBuf<double>>(n * n);
    util::Xoshiro256 rng(3);
    for (auto& v : a->raw()) v = rng.uniform();
    for (auto& v : b->raw()) v = rng.uniform();
    w.push_back({"matmul", n, [a, b, c, n](Exec& ex) {
                   return std::function<void()>([&ex, a, b, c, n] {
                     algo::mo_matmul(ex, Mat::full(c->ref(), n, n),
                                     Mat::full(a->ref(), n, n),
                                     Mat::full(b->ref(), n, n), 32);
                   });
                 }});
  }
  {
    auto buf = std::make_shared<sched::NatBuf<std::uint64_t>>(1u << 16);
    w.push_back({"sort", 1u << 16, [buf](Exec& ex) {
                   return std::function<void()>([&ex, buf] {
                     util::Xoshiro256 rng(4);
                     for (auto& v : buf->raw()) v = rng();
                     algo::spms_sort(ex, buf->ref());
                   });
                 }});
  }
  {
    auto buf = std::make_shared<sched::NatBuf<algo::cplx>>(1u << 16);
    w.push_back({"fft", 1u << 16, [buf](Exec& ex) {
                   return std::function<void()>([&ex, buf] {
                     util::Xoshiro256 rng(5);
                     for (auto& v : buf->raw()) {
                       v = algo::cplx(rng.uniform(), 0.0);
                     }
                     algo::mo_fft(ex, buf->ref());
                   });
                 }});
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  // bench_wallclock [--quick | --reps N]: more reps -> tighter minima on a
  // noisy host.
  int reps = 5;
  if (argc > 1 && std::string(argv[1]) == "--quick") reps = 3;
  if (argc > 2 && std::string(argv[1]) == "--reps") {
    reps = std::max(1, std::atoi(argv[2]));
  }
  const std::vector<unsigned> thread_counts{1, 2, 4, 8};
  const std::vector<std::pair<std::string, sched::SchedMode>> backends{
      {"steal", sched::SchedMode::kWorkSteal},
      {"sharedq", sched::SchedMode::kSharedQueue}};

  bench::print_header("Native wall clock: work stealing vs shared queue");
  std::printf(
      "hardware_concurrency = %u  (with fewer cores than threads, "
      "multi-thread rows\n measure scheduling overhead; self-relative "
      "speedup still ranks the backends)\n",
      std::thread::hardware_concurrency());

  bench::JsonRecorder json("BENCH_wallclock.json");
  for (const auto& w : workloads()) {
    // One cell per (threads, backend); executors and buffers stay alive for
    // the whole workload so repetitions can interleave across cells.
    struct Cell {
      unsigned threads;
      std::size_t backend;
      std::unique_ptr<Exec> ex;
      std::function<void()> run;
      double best_ns = 0.0;
    };
    std::vector<Cell> cells;
    for (unsigned threads : thread_counts) {
      for (std::size_t bi = 0; bi < backends.size(); ++bi) {
        Cell c{threads, bi,
               std::make_unique<Exec>(threads, 1 << 12, backends[bi].second),
               {}};
        c.run = w.make(*c.ex);
        c.run();  // warm-up
        cells.push_back(std::move(c));
      }
    }
    for (int r = 0; r < reps; ++r) {
      // Alternate sweep direction so every cell sees both neighbours'
      // cache footprints -- fixed ordering would hand each cell a
      // constant (and unequal) warm-cache inheritance.
      for (std::size_t k = 0; k < cells.size(); ++k) {
        Cell& c = cells[r % 2 == 0 ? k : cells.size() - 1 - k];
        const double ns = bench::time_once_ns(c.run);
        if (r == 0 || ns < c.best_ns) c.best_ns = ns;
      }
    }
    util::Table t({"threads", "steal ns/op", "steal T1/Tp", "sharedq ns/op",
                   "sharedq T1/Tp"});
    std::vector<double> base(backends.size(), 0.0);
    for (const auto& c : cells) {
      if (c.threads == 1) base[c.backend] = c.best_ns;
    }
    for (unsigned threads : thread_counts) {
      std::vector<std::string> row{util::Table::fmt(std::uint64_t(threads))};
      for (std::size_t bi = 0; bi < backends.size(); ++bi) {
        for (const auto& c : cells) {
          if (c.threads != threads || c.backend != bi) continue;
          json.add(w.name, backends[bi].first, threads, w.n, c.best_ns, reps);
          row.push_back(util::Table::fmt(c.best_ns, "%.0f"));
          row.push_back(util::Table::fmt(base[bi] / c.best_ns, "%.3f"));
        }
      }
      t.add_row(std::move(row));
    }
    std::cout << "\n-- " << w.name << " (n=" << w.n << ") --\n";
    t.print(std::cout);
  }
  json.write();
  return 0;
}
