// Wall-clock benchmarks of the MO algorithms on the *native* executor
// (real std::threads on the host machine), via google-benchmark.
//
// These complement the simulator benches: the same algorithm templates,
// scheduled by the same hints, actually run and scale on a laptop-class
// multicore (the repro target of the paper's premise that oblivious
// algorithms give portable performance).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>
#include <thread>

#include "algo/fft.hpp"
#include "algo/gep.hpp"
#include "algo/listrank.hpp"
#include "algo/scan.hpp"
#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "sched/native_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

void BM_Transpose(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  sched::NativeExecutor ex(static_cast<unsigned>(state.range(1)));
  auto a = ex.make_buf<double>(n * n);
  auto out = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(1);
  for (auto& v : a.raw()) v = rng.uniform();
  for (auto _ : state) {
    algo::mo_transpose(ex, a.ref(), out.ref(), n);
    benchmark::DoNotOptimize(out.raw().data());
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) * n * n *
                          sizeof(double));
}
BENCHMARK(BM_Transpose)
    ->Args({512, 1})
    ->Args({512, 4})
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Unit(benchmark::kMillisecond);

void BM_Fft(benchmark::State& state) {
  const std::uint64_t n = std::uint64_t{1} << state.range(0);
  sched::NativeExecutor ex(static_cast<unsigned>(state.range(1)));
  auto buf = ex.make_buf<algo::cplx>(n);
  util::Xoshiro256 rng(2);
  for (auto _ : state) {
    for (auto& v : buf.raw()) v = algo::cplx(rng.uniform(), 0.0);
    algo::mo_fft(ex, buf.ref());
    benchmark::DoNotOptimize(buf.raw().data());
  }
}
BENCHMARK(BM_Fft)
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({18, 1})
    ->Args({18, 4})
    ->Unit(benchmark::kMillisecond);

void BM_Spms(benchmark::State& state) {
  const std::uint64_t n = std::uint64_t{1} << state.range(0);
  sched::NativeExecutor ex(static_cast<unsigned>(state.range(1)));
  auto buf = ex.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(3);
  for (auto _ : state) {
    for (auto& v : buf.raw()) v = rng();
    algo::spms_sort(ex, buf.ref());
    benchmark::DoNotOptimize(buf.raw().data());
  }
}
BENCHMARK(BM_Spms)
    ->Args({18, 1})
    ->Args({18, 4})
    ->Args({20, 1})
    ->Args({20, 4})
    ->Unit(benchmark::kMillisecond);

void BM_Matmul(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  sched::NativeExecutor ex(static_cast<unsigned>(state.range(1)));
  auto c = ex.make_buf<double>(n * n);
  auto a = ex.make_buf<double>(n * n);
  auto b = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(4);
  for (auto& v : a.raw()) v = rng.uniform();
  for (auto& v : b.raw()) v = rng.uniform();
  using Mat = sched::MatView<sched::NatRef<double>>;
  for (auto _ : state) {
    algo::mo_matmul(ex, Mat::full(c.ref(), n, n), Mat::full(a.ref(), n, n),
                    Mat::full(b.ref(), n, n), 32);
    benchmark::DoNotOptimize(c.raw().data());
  }
}
BENCHMARK(BM_Matmul)
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 4})
    ->Unit(benchmark::kMillisecond);

void BM_Igep(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  sched::NativeExecutor ex(static_cast<unsigned>(state.range(1)));
  auto buf = ex.make_buf<double>(n * n);
  util::Xoshiro256 rng(5);
  using Mat = sched::MatView<sched::NatRef<double>>;
  for (auto _ : state) {
    for (auto& v : buf.raw()) v = rng.uniform();
    algo::igep<algo::FloydWarshallInstance>(ex, Mat::full(buf.ref(), n, n),
                                            32);
    benchmark::DoNotOptimize(buf.raw().data());
  }
}
BENCHMARK(BM_Igep)
    ->Args({256, 1})
    ->Args({256, 4})
    ->Unit(benchmark::kMillisecond);

void BM_ListRank(benchmark::State& state) {
  const std::uint64_t n = std::uint64_t{1} << state.range(0);
  sched::NativeExecutor ex(static_cast<unsigned>(state.range(1)));
  std::vector<std::uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  util::Xoshiro256 rng(6);
  for (std::uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  auto sb = ex.make_buf<std::uint64_t>(n);
  auto pb = ex.make_buf<std::uint64_t>(n);
  auto db = ex.make_buf<std::uint64_t>(n);
  std::fill(sb.raw().begin(), sb.raw().end(), algo::kNil);
  std::fill(pb.raw().begin(), pb.raw().end(), algo::kNil);
  for (std::uint64_t t = 0; t + 1 < n; ++t) {
    sb.raw()[perm[t]] = perm[t + 1];
    pb.raw()[perm[t + 1]] = perm[t];
  }
  for (auto _ : state) {
    algo::mo_list_rank(ex, sb.ref(), pb.ref(), db.ref());
    benchmark::DoNotOptimize(db.raw().data());
  }
}
BENCHMARK(BM_ListRank)
    ->Args({16, 1})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "hardware_concurrency = %u  (multi-thread rows only speed up in wall "
      "time when this exceeds the thread arg;\n on a 1-core host they "
      "measure scheduling overhead instead)\n",
      std::thread::hardware_concurrency());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
