// Experiment: Theorem 7 -- MO-LR list ranking.
//
// Reproduced claims:
//   (1) work Theta(n log n) (sorts dominate each contraction level);
//   (2) cache complexity dominated by (n/(q_i B_i)) log_{C_i} n;
//   (3) span polylogarithmic in effect: T_p scales with p while the
//       sequential pointer chase has span = work and one random access per
//       hop (its L1 misses ~ n, i.e. B_1 times more per element than a
//       scan).
#include <cmath>
#include <iostream>
#include <numeric>

#include "algo/listrank.hpp"
#include "bench/common.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

struct List {
  std::vector<std::uint64_t> succ, pred;
};

List random_list(std::uint64_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  util::Xoshiro256 rng(seed);
  for (std::uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  List li;
  li.succ.assign(n, algo::kNil);
  li.pred.assign(n, algo::kNil);
  for (std::uint64_t t = 0; t + 1 < n; ++t) {
    li.succ[perm[t]] = perm[t + 1];
    li.pred[perm[t + 1]] = perm[t];
  }
  return li;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Theorem 7: MO-LR list ranking");
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  bench::print_machine(cfg);

  bench::Series work{"MO-LR work vs n log2 n"};
  bench::Series miss{"MO-LR L1 misses vs (n/(q_1 B_1)) log_{C_1} n"};
  bench::Series chase{"sequential chase L1 misses vs n (one per hop)"};
  util::Table t({"n", "work", "span", "T_p (p=4)", "T_1", "speedup"});

  for (std::uint64_t n :
       bench::sweep(smoke, {1u << 11, 1u << 12, 1u << 13, 1u << 14})) {
    const List li = random_list(n, n);
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    auto sb = ex.make_buf<std::uint64_t>(n);
    auto pb = ex.make_buf<std::uint64_t>(n);
    auto db = ex.make_buf<std::uint64_t>(n);
    sb.raw() = li.succ;
    pb.raw() = li.pred;
    const auto m = ex.run(8 * n, [&] {
      algo::mo_list_rank(ex, sb.ref(), pb.ref(), db.ref());
    });
    work.add(double(n), double(m.work), double(n) * std::log2(double(n)));
    const double logc = std::max(
        1.0, std::log(double(n)) / std::log(double(cfg.capacity(1))));
    miss.add(double(n), double(m.level_max_misses[0]),
             double(n) / (cfg.caches_at(1) * cfg.block(1)) * logc);
    t.add_row({util::Table::fmt(std::uint64_t(n)), util::Table::fmt(m.work),
               util::Table::fmt(m.span),
               util::Table::fmt(m.parallel_steps(cfg.cores()), "%.4g"),
               util::Table::fmt(m.parallel_steps(1), "%.4g"),
               util::Table::fmt(m.parallel_steps(1) /
                                    m.parallel_steps(cfg.cores()),
                                "%.2f")});

    const auto ms = ex.run(8 * n, [&] {
      algo::list_rank_sequential(ex, sb.ref(), pb.ref(), db.ref());
    });
    chase.add(double(n), double(ms.level_max_misses[0]), double(n));
  }
  bench::print_series(work);
  bench::print_series(miss);
  bench::print_series(chase);
  std::cout << "\n-- MO-LR parallel time scaling --\n";
  t.print(std::cout);
  return 0;
}
