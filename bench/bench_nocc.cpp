// Experiment: Theorem 10 -- NO connected components on M(p, B).
//
// Reproduced claims: communication ~ (N~/(pB)) per sort pass times the
// contraction rounds, computation Theta((N~/p) log n), for
// N~ = n + m log n; both drop with p, and the shapes hold across graph
// families.
#include <cmath>
#include <iostream>

#include "algo/graph.hpp"
#include "bench/common.hpp"
#include "no/wrappers.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

algo::EdgeList random_graph(std::uint64_t n, std::uint64_t m,
                            std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  algo::EdgeList g;
  g.n = n;
  for (std::uint64_t e = 0; e < m; ++e) {
    g.edges.emplace_back(static_cast<std::uint32_t>(rng.below(n)),
                         static_cast<std::uint32_t>(rng.below(n)));
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Theorem 10: NO connected components on M(p, B)");

  {
    bench::Series comm{"NO-CC communication vs (N~/(pB)) log n, p=8, B=4"};
    bench::Series comp{"NO-CC computation vs (N~/p) log2 n, p=8"};
    for (std::uint64_t n : bench::sweep(smoke, {512u, 1024u, 2048u, 4096u})) {
      const algo::EdgeList g = random_graph(n, 2 * n, n);
      no::NoMachine mach(32, {{8, 4}});
      bench::trace_attach(mach);
      no::no_connected_components(mach, g);
      const double ntil =
          double(n) + double(g.edges.size()) * std::log2(double(n));
      comm.add(double(n), double(mach.communication(0)),
               ntil / (8.0 * 4.0) * std::log2(double(n)));
      comp.add(double(n), double(mach.computation(0)),
               ntil / 8.0 * std::log2(double(n)));
    }
    bench::print_series(comm);
    bench::print_series(comp);
  }

  {
    util::Table t({"p", "communication (B=4)", "computation"});
    const std::uint64_t pn = smoke ? 512 : 2048;
    const algo::EdgeList g = random_graph(pn, 2 * pn, 3);
    for (std::uint32_t p :
         bench::sweep(smoke, {1u, 2u, 4u, 8u, 16u, 32u}, 3)) {
      no::NoMachine mach(32, {{p, 4}});
      bench::trace_attach(mach);
      no::no_connected_components(mach, g);
      t.add_row({util::Table::fmt(std::uint64_t(p)),
                 util::Table::fmt(mach.communication(0)),
                 util::Table::fmt(mach.computation(0))});
    }
    std::cout << "\n-- NO-CC p-sweep (n=2048, m=4096) --\n";
    t.print(std::cout);
  }
  return 0;
}
