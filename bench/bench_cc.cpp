// Experiment: Theorem 8 -- MO connected components.
//
// Reproduced claims:
//   (1) total work O(N log N log(N/B_1)) shape for N = n + m (sorting per
//       hooking round times O(log) contraction rounds);
//   (2) misses dominated by sort passes, i.e. ~ (N/(q_i B_i)) per round;
//   (3) rounds to convergence O(log n) across graph families (path, star,
//       grid, random -- including the star that defeats naive min-hooking).
#include <cmath>
#include <iostream>

#include "algo/graph.hpp"
#include "bench/common.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

algo::EdgeList random_graph(std::uint64_t n, std::uint64_t m,
                            std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  algo::EdgeList g;
  g.n = n;
  for (std::uint64_t e = 0; e < m; ++e) {
    g.edges.emplace_back(static_cast<std::uint32_t>(rng.below(n)),
                         static_cast<std::uint32_t>(rng.below(n)));
  }
  return g;
}

algo::EdgeList grid_graph(std::uint64_t side) {
  algo::EdgeList g;
  g.n = side * side;
  for (std::uint64_t r = 0; r < side; ++r) {
    for (std::uint64_t c = 0; c < side; ++c) {
      const std::uint32_t u = static_cast<std::uint32_t>(r * side + c);
      if (c + 1 < side) g.edges.emplace_back(u, u + 1);
      if (r + 1 < side) {
        g.edges.emplace_back(u, static_cast<std::uint32_t>(u + side));
      }
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke(argc, argv);
  bench::TraceExport trace_export(argc, argv);
  bench::print_header("Theorem 8: MO connected components");
  const hm::MachineConfig cfg = hm::MachineConfig::shared_l2(4);
  bench::print_machine(cfg);

  bench::Series work{"MO-CC work vs N log2(N) log2(N/B_1), N = n+m"};
  bench::Series miss{"MO-CC L1 misses vs (N/(q_1 B_1)) log_{C_1}N log2(N/B_1)"};
  for (std::uint64_t n :
       bench::sweep(smoke, {1u << 10, 1u << 11, 1u << 12, 1u << 13})) {
    const algo::EdgeList g = random_graph(n, 2 * n, n);
    sched::SimExecutor ex(cfg);
    bench::trace_attach(ex);
    std::vector<std::uint64_t> comp;
    const auto m = ex.run(16 * n, [&] {
      comp = algo::mo_connected_components(ex, g);
    });
    const double N = double(n + g.edges.size());
    work.add(N, double(m.work),
             N * std::log2(N) * std::log2(N / cfg.block(1)));
    const double logc =
        std::max(1.0, std::log(N) / std::log(double(cfg.capacity(1))));
    miss.add(N, double(m.level_max_misses[0]),
             N / (cfg.caches_at(1) * cfg.block(1)) * logc *
                 std::log2(N / cfg.block(1)));
  }
  bench::print_series(work, "N");
  bench::print_series(miss, "N");

  // (3) Work across graph families at n = 4096 vertices (1024 under
  // --smoke).
  {
    const std::uint32_t fam_n = smoke ? 1024 : 4096;
    util::Table t({"graph family", "n", "edges", "work", "L1 misses"});
    auto row = [&](const std::string& name, const algo::EdgeList& g) {
      sched::SimExecutor ex(cfg);
      bench::trace_attach(ex);
      std::vector<std::uint64_t> comp;
      const auto m = ex.run(16 * (g.n + 1), [&] {
        comp = algo::mo_connected_components(ex, g);
      });
      t.add_row({name, util::Table::fmt(std::uint64_t(g.n)),
                 util::Table::fmt(std::uint64_t(g.edges.size())),
                 util::Table::fmt(m.work),
                 util::Table::fmt(m.level_max_misses[0])});
    };
    {
      algo::EdgeList path;
      path.n = fam_n;
      for (std::uint32_t v = 1; v < path.n; ++v) {
        path.edges.emplace_back(v - 1, v);
      }
      row("path (deep)", path);
    }
    {
      algo::EdgeList star;
      star.n = fam_n;
      for (std::uint32_t v = 1; v < star.n; ++v) star.edges.emplace_back(0u, v);
      row("star (hooking stress)", star);
    }
    row("grid 64x64", grid_graph(64));
    row("random sparse", random_graph(fam_n, 2 * fam_n, 7));
    row("many components", random_graph(fam_n, fam_n / 4, 8));
    std::cout << "\n-- graph-family robustness --\n";
    t.print(std::cout);
  }
  return 0;
}
