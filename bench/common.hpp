// Shared helpers for the per-table/figure benchmark binaries.
//
// Each bench prints, for a parameter sweep, the measured quantity next to
// the paper's closed-form bound and their ratio; a bound "holds in shape"
// when the ratio column is flat (constant factor) across the sweep.  The
// fitted log-log slope is printed so EXPERIMENTS.md can record measured vs
// predicted growth exponents.
#pragma once

#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "hm/config.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace obliv::bench {

inline void print_header(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

inline void print_machine(const hm::MachineConfig& cfg) {
  std::cout << "machine: " << cfg.describe() << "\n";
}

/// One sweep series: x (problem size), measured, and the model prediction.
struct Series {
  Series() = default;
  explicit Series(std::string n) : name(std::move(n)) {}

  std::string name;
  std::vector<double> x, measured, model;

  void add(double xi, double meas, double mod) {
    x.push_back(xi);
    measured.push_back(meas);
    model.push_back(mod);
  }
};

/// Prints x / measured / model / ratio rows plus slope + flatness summary.
inline void print_series(const Series& s,
                         const std::string& xlabel = "n") {
  util::Table t({xlabel, "measured", "model", "ratio"});
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    t.add_row({util::Table::fmt(s.x[i], "%.0f"),
               util::Table::fmt(s.measured[i], "%.4g"),
               util::Table::fmt(s.model[i], "%.4g"),
               util::Table::fmt(s.measured[i] / s.model[i], "%.3f")});
  }
  std::cout << "\n-- " << s.name << " --\n";
  t.print(std::cout);
  const double slope_meas = util::loglog_slope(s.x, s.measured);
  const double slope_model = util::loglog_slope(s.x, s.model);
  std::cout << "loglog slope: measured " << util::Table::fmt(slope_meas, "%.3f")
            << " vs model " << util::Table::fmt(slope_model, "%.3f")
            << "; ratio spread "
            << util::Table::fmt(util::ratio_spread(s.measured, s.model),
                                "%.2f")
            << "x (flat ratio => bound shape holds)\n";
}

}  // namespace obliv::bench
