// Shared helpers for the per-table/figure benchmark binaries.
//
// Each bench prints, for a parameter sweep, the measured quantity next to
// the paper's closed-form bound and their ratio; a bound "holds in shape"
// when the ratio column is flat (constant factor) across the sweep.  The
// fitted log-log slope is printed so EXPERIMENTS.md can record measured vs
// predicted growth exponents.
#pragma once

#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "hm/config.hpp"
#include "obs/trace.hpp"
#include "sched/native_executor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace obliv::bench {

inline void print_header(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n";
}

/// True when the binary was invoked with --smoke.  Under --smoke a bench
/// shrinks its sweeps to the smallest sizes that still exercise every code
/// path and prints the same tables; bench/CMakeLists.txt registers every
/// bench as a `ctest` entry with this flag, so bench bitrot is caught on
/// every ctest invocation instead of the next manual bench run.
inline bool smoke(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") return true;
  }
  return false;
}

/// A sweep that keeps only its first `keep` points under --smoke (two
/// points still exercise the sweep loop and give loglog_slope something to
/// fit, while skipping the large sizes that dominate a bench's runtime).
template <class T>
std::vector<T> sweep(bool smoke_mode, std::initializer_list<T> full,
                     std::size_t keep = 2) {
  std::vector<T> v(full);
  if (smoke_mode && v.size() > keep) v.resize(keep);
  return v;
}

inline void print_machine(const hm::MachineConfig& cfg) {
  std::cout << "machine: " << cfg.describe() << "\n";
}

// ---------------------------------------------------------------------------
// Unified trace export: every bench honors `--trace-out=<path>` (or the
// OBLIV_TRACE_OUT environment variable) with one spelling.  Construct one
// TraceExport at the top of main(); executor/machine construction sites
// then call bench::trace_attach(obj).  When tracing was not requested the
// tracer is null and trace_attach degrades to set_tracer(nullptr).  The
// Chrome trace is written when the TraceExport leaves scope; rings that
// overwrote events are surfaced by the exporter's stderr drop warning and
// recorded in the trace's otherData (obliv-trace refuses such a trace for
// span analysis but chrome://tracing renders it fine).
// ---------------------------------------------------------------------------
class TraceExport {
 public:
  /// `rings` must be >= the worker count of any native pool the trace is
  /// attached to (rings are single-producer); sim/NO benches use 1.
  TraceExport(int argc, char** argv, std::uint32_t rings = 1,
              std::size_t capacity = obs::TraceRing::kDefaultCapacity)
      : path_(obs::resolve_trace_out(argc, argv)) {
    if (!path_.empty()) {
      tracer_ = std::make_unique<obs::Tracer>(rings, capacity);
    }
    active_ = this;
  }
  ~TraceExport() {
    if (tracer_ != nullptr && obs::write_chrome_trace(path_, *tracer_)) {
      std::cout << "trace: wrote " << path_ << " ("
                << tracer_->events_pushed() << " events, "
                << tracer_->events_dropped() << " dropped)\n";
    }
    if (active_ == this) active_ = nullptr;
  }
  TraceExport(const TraceExport&) = delete;
  TraceExport& operator=(const TraceExport&) = delete;

  obs::Tracer* tracer() const { return tracer_.get(); }

  /// The innermost live TraceExport, for helpers that do not see argv.
  static obs::Tracer* active_tracer() {
    return active_ != nullptr ? active_->tracer() : nullptr;
  }

 private:
  static inline TraceExport* active_ = nullptr;
  std::string path_;
  std::unique_ptr<obs::Tracer> tracer_;
};

/// Attaches the active trace export (if any) to a freshly constructed
/// executor / machine; returns it for chaining.
template <class T>
T& trace_attach(T& target) {
  target.set_tracer(TraceExport::active_tracer());
  return target;
}

/// One sweep series: x (problem size), measured, and the model prediction.
struct Series {
  Series() = default;
  explicit Series(std::string n) : name(std::move(n)) {}

  std::string name;
  std::vector<double> x, measured, model;

  void add(double xi, double meas, double mod) {
    x.push_back(xi);
    measured.push_back(meas);
    model.push_back(mod);
  }
};

/// Prints x / measured / model / ratio rows plus slope + flatness summary.
inline void print_series(const Series& s,
                         const std::string& xlabel = "n") {
  util::Table t({xlabel, "measured", "model", "ratio"});
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    t.add_row({util::Table::fmt(s.x[i], "%.0f"),
               util::Table::fmt(s.measured[i], "%.4g"),
               util::Table::fmt(s.model[i], "%.4g"),
               util::Table::fmt(s.measured[i] / s.model[i], "%.3f")});
  }
  std::cout << "\n-- " << s.name << " --\n";
  t.print(std::cout);
  const double slope_meas = util::loglog_slope(s.x, s.measured);
  const double slope_model = util::loglog_slope(s.x, s.model);
  std::cout << "loglog slope: measured " << util::Table::fmt(slope_meas, "%.3f")
            << " vs model " << util::Table::fmt(slope_model, "%.3f")
            << "; ratio spread "
            << util::Table::fmt(util::ratio_spread(s.measured, s.model),
                                "%.2f")
            << "x (flat ratio => bound shape holds)\n";
}

// ---------------------------------------------------------------------------
// Wall-clock timing + machine-readable output (BENCH_*.json)
// ---------------------------------------------------------------------------

/// Git revision baked in by bench/CMakeLists.txt at configure time.
inline const char* git_rev() {
#ifdef OBLIV_GIT_REV
  return OBLIV_GIT_REV;
#else
  return "unknown";
#endif
}

/// Host hardware concurrency as seen by the process (0 is normalized to 1,
/// matching how the sharded replay engine treats an unknown core count).
/// Recorded in every BENCH_*.json so parallel-replay numbers from hosts
/// with different core counts are never compared as like-for-like.
inline unsigned host_concurrency() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

/// True when this bench run pins its threads: OBLIV_PIN is set (see
/// sched::pinning_requested) and the platform affinity call works.  The
/// first call pins the calling (main/worker-0) thread to core 0 -- the pool
/// workers pin themselves on spawn -- so measurement runs under OBLIV_PIN=1
/// are fully pinned.  Recorded alongside hardware_concurrency so pinned and
/// unpinned rows are never compared as like-for-like in the JSON history.
inline bool threads_pinned() {
  static const bool pinned =
      sched::pinning_requested() && sched::pin_current_thread(0);
  return pinned;
}

/// Opens `{` and writes the environment fields every BENCH_*.json carries
/// (git_rev, hardware_concurrency, pinned) -- one spelling shared by every
/// recorder so the fields can never drift apart across benches.  The
/// caller continues with its own keys and closes the object.
inline void write_json_env_header(std::ostream& out) {
  out << "{\n  \"git_rev\": \"" << git_rev() << "\",\n";
  out << "  \"hardware_concurrency\": " << host_concurrency() << ",\n";
  out << "  \"pinned\": " << (threads_pinned() ? "true" : "false") << ",\n";
}

/// One timed execution of `fn`, in nanoseconds.
inline double time_once_ns(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Runs `fn` once untimed (warm-up), then `reps` timed repetitions, and
/// returns the median wall-clock nanoseconds of one repetition.  Median of
/// K is robust to the occasional scheduler hiccup a mean would smear in.
inline double median_ns(int reps, const std::function<void()>& fn) {
  fn();
  std::vector<double> ns;
  ns.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  }
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

/// Collects one record per (workload, scheduler, threads, n) measurement and
/// writes them as a JSON document, so the perf trajectory is trackable
/// across PRs (compare BENCH_wallclock.json between checkouts).
class JsonRecorder {
 public:
  struct Record {
    std::string bench;
    std::string sched;
    unsigned threads = 1;
    std::uint64_t n = 0;
    double ns_per_op = 0;
    int reps = 0;
  };

  explicit JsonRecorder(std::string path) : path_(std::move(path)) {}

  void add(const std::string& bench_name, const std::string& sched,
           unsigned threads, std::uint64_t n, double ns_per_op, int reps) {
    records_.push_back(Record{bench_name, sched, threads, n, ns_per_op, reps});
  }

  /// Writes the collected records; returns false (and warns) on I/O error.
  bool write() const {
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "warning: cannot write " << path_ << "\n";
      return false;
    }
    write_json_env_header(out);
    out << "  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << "    {\"bench\": \"" << r.bench << "\", \"sched\": \"" << r.sched
          << "\", \"threads\": " << r.threads << ", \"n\": " << r.n
          // three decimals: the simd:* kernel rows are per-element and
          // sub-nanosecond, where one decimal would quantize the ratios.
          << ", \"ns_per_op\": " << util::Table::fmt(r.ns_per_op, "%.3f")
          << ", \"reps\": " << r.reps << "}"
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path_ << " (" << records_.size()
              << " records, git_rev=" << git_rev() << ")\n";
    return true;
  }

 private:
  std::string path_;
  std::vector<Record> records_;
};

/// Recorder for the simulator-throughput bench (BENCH_simrate.json).
/// One record per (workload, machine config, n): the number of simulated
/// word accesses per repetition, the best-of-K rate of the current
/// simulator, and -- for trace-replay rows -- the rate of the vendored
/// pre-optimization simulator on the identical trace plus their ratio, so
/// the simulator's speed (and the speedup claim) is trackable across PRs.
class SimRateRecorder {
 public:
  struct Record {
    std::string bench;
    std::string config;
    std::uint64_t n = 0;
    std::uint64_t accesses = 0;    ///< simulated word accesses per rep
    double acc_per_sec = 0;        ///< best-of-K, current simulator
    double base_acc_per_sec = 0;   ///< best-of-K, baseline (0 = no baseline)
    double speedup = 0;            ///< acc_per_sec / base_acc_per_sec
    int reps = 0;
    unsigned threads = 1;          ///< replay engine workers (1 = serial)
  };

  explicit SimRateRecorder(std::string path) : path_(std::move(path)) {}

  void add(const std::string& bench_name, const std::string& config,
           std::uint64_t n, std::uint64_t accesses, double acc_per_sec,
           double base_acc_per_sec, double speedup, int reps,
           unsigned threads = 1) {
    records_.push_back(Record{bench_name, config, n, accesses, acc_per_sec,
                              base_acc_per_sec, speedup, reps, threads});
  }

  bool write() const {
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "warning: cannot write " << path_ << "\n";
      return false;
    }
    write_json_env_header(out);
    out << "  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << "    {\"bench\": \"" << r.bench << "\", \"config\": \""
          << r.config << "\", \"n\": " << r.n
          << ", \"accesses\": " << r.accesses << ", \"acc_per_sec\": "
          << util::Table::fmt(r.acc_per_sec, "%.4g")
          << ", \"base_acc_per_sec\": "
          << util::Table::fmt(r.base_acc_per_sec, "%.4g")
          << ", \"speedup\": " << util::Table::fmt(r.speedup, "%.3f")
          << ", \"reps\": " << r.reps << ", \"threads\": " << r.threads
          << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << path_ << " (" << records_.size()
              << " records, git_rev=" << git_rev() << ")\n";
    return true;
  }

 private:
  std::string path_;
  std::vector<Record> records_;
};

}  // namespace obliv::bench
