// Example: org-chart analytics with Euler tours and MO-LR.
//
// A random 10,000-person reporting tree is analyzed with the Section VI
// machinery: the Euler tour is built with sorts, ranked with MO-LR
// (independent-set contraction), and every employee's depth (management
// chain length) and organization size (subtree size) fall out of two
// weighted rankings -- no pointer chasing anywhere.
//
// Build & run:  ./build/examples/example_orgchart
#include <algorithm>
#include <iostream>
#include <vector>

#include "algo/graph.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

int main() {
  const std::uint64_t n = 10000;
  util::Xoshiro256 rng(2026);

  // Random attachment tree: employee v reports to someone hired earlier.
  algo::EdgeList tree;
  tree.n = n;
  for (std::uint64_t v = 1; v < n; ++v) {
    tree.edges.emplace_back(static_cast<std::uint32_t>(rng.below(v)),
                            static_cast<std::uint32_t>(v));
  }

  const hm::MachineConfig machine = hm::MachineConfig::shared_l2(8);
  sched::SimExecutor sim(machine);
  algo::TreeFunctions f;
  const auto m = sim.run(16 * n, [&] {
    f = algo::mo_tree_functions(sim, tree, /*root=*/0);
  });

  std::cout << "Org chart of " << n << " employees (root = CEO, id 0)\n";
  std::cout << "machine: " << machine.describe() << "\n";
  std::cout << "work " << m.work << ", span " << m.span
            << ", L1 max misses " << m.level_max_misses[0] << "\n\n";

  // Depth distribution.
  std::int64_t max_depth = 0;
  double avg_depth = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    max_depth = std::max(max_depth, f.depth[v]);
    avg_depth += double(f.depth[v]);
  }
  std::cout << "deepest management chain: " << max_depth << " levels\n";
  std::cout << "average depth:            " << avg_depth / double(n) << "\n";

  // Biggest organizations below the CEO.
  std::vector<std::uint64_t> directs;
  for (std::uint64_t v = 1; v < n; ++v) {
    if (f.parent[v] == 0) directs.push_back(v);
  }
  std::sort(directs.begin(), directs.end(),
            [&](std::uint64_t a, std::uint64_t b) {
              return f.subtree_size[a] > f.subtree_size[b];
            });
  std::cout << "CEO has " << directs.size() << " direct reports; largest "
            << "organizations:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, directs.size()); ++i) {
    std::cout << "  employee " << directs[i] << ": "
              << f.subtree_size[directs[i]] << " people\n";
  }

  // Sanity: subtree sizes sum correctly at the root.
  std::uint64_t total = 1;
  for (std::uint64_t v : directs) total += f.subtree_size[v];
  std::cout << "\nroot subtree check: " << f.subtree_size[0] << " == " << n
            << ", directs sum to " << total << "\n";
  return (f.subtree_size[0] == n && total == n) ? 0 : 1;
}
