// Example: network-oblivious algorithms on M(p, B) and D-BSP.
//
// The same N-GEP program (Section V-B) is "run" once and costed on four
// different foldings of the PE network simultaneously, plus a D-BSP
// machine -- the point of network-obliviousness: one specification, optimal
// behaviour across machines.  Also demonstrates columnsort and NO-LR.
//
// Build & run:  ./build/examples/example_netsim
#include <algorithm>
#include <iostream>
#include <limits>
#include <numeric>
#include <vector>

#include "algo/gep.hpp"
#include "no/colsort.hpp"
#include "no/ngep.hpp"
#include "no/wrappers.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace obliv;

int main() {
  util::Xoshiro256 rng(5);

  // --- N-GEP (Floyd-Warshall) costed on four foldings at once. ---
  {
    const std::uint64_t n = 64;
    std::vector<double> x(n * n);
    for (auto& v : x) v = rng.uniform() * 10 + 0.1;
    for (std::uint64_t v = 0; v < n; ++v) x[v * n + v] = 0;

    std::vector<no::FoldConfig> folds = {{4, 4}, {16, 4}, {64, 4}, {16, 16}};
    no::NoMachine mach(64, folds, no::DbspConfig::mesh_like(16));
    no::n_gep<algo::FloydWarshallInstance>(mach, x, n, /*use_dstar=*/true);

    std::cout << "N-GEP (Floyd-Warshall, n=" << n
              << ") on M(64), one run, four foldings:\n";
    util::Table t({"M(p,B)", "communication", "computation"});
    for (std::size_t f = 0; f < folds.size(); ++f) {
      t.add_row({"M(" + std::to_string(folds[f].p) + "," +
                     std::to_string(folds[f].block) + ")",
                 util::Table::fmt(mach.communication(f)),
                 util::Table::fmt(mach.computation(f))});
    }
    t.print(std::cout);
    std::cout << "D-BSP(16, mesh-like) communication time: "
              << mach.dbsp_time() << "\n";
    std::cout << "supersteps: " << mach.supersteps() << "\n\n";
  }

  // --- Columnsort: the NO sorting algorithm. ---
  {
    const std::uint64_t n = 20000;
    std::vector<std::int64_t> keys(n);
    for (auto& v : keys) v = static_cast<std::int64_t>(rng.below(1u << 30));
    const no::ColsortShape sh = no::colsort_shape(n);
    no::NoMachine mach(sh.s + 1, {{4, 8}});
    no::no_columnsort(mach, keys, std::numeric_limits<std::int64_t>::min(),
                      std::numeric_limits<std::int64_t>::max());
    std::cout << "columnsort of " << n << " keys: r=" << sh.r << " s=" << sh.s
              << ", sorted=" << std::is_sorted(keys.begin(), keys.end())
              << ", comm on M(4,8) = " << mach.communication(0)
              << " blocks\n\n";
  }

  // --- NO-LR: list ranking with evenly distributed nodes. ---
  {
    const std::uint64_t n = 4096;
    std::vector<std::uint64_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::uint64_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    std::vector<std::uint64_t> succ(n, algo::kNil), pred(n, algo::kNil);
    for (std::uint64_t t = 0; t + 1 < n; ++t) {
      succ[perm[t]] = perm[t + 1];
      pred[perm[t + 1]] = perm[t];
    }
    no::NoMachine mach(16, {{16, 4}});
    const auto rank = no::no_list_rank(mach, succ, pred);
    std::cout << "NO-LR on " << n << " nodes: head rank = " << rank[perm[0]]
              << " (expect " << n - 1 << "), comm on M(16,4) = "
              << mach.communication(0) << " blocks\n";
  }
  return 0;
}
