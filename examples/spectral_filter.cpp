// Example: spectral denoising with MO-FFT.
//
// A noisy three-tone signal is transformed with the multicore-oblivious FFT
// (Figure 3), small spectral coefficients are zeroed, and the inverse FFT
// reconstructs the signal.  The same code runs on the HM simulator (to show
// Theorem 2's cache behaviour on this workload) and on real threads.
//
// Build & run:  ./build/examples/example_spectral_filter
#include <cmath>
#include <complex>
#include <iostream>
#include <numbers>
#include <vector>

#include "algo/fft.hpp"
#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

namespace {

std::vector<algo::cplx> make_signal(std::size_t n, util::Xoshiro256& rng) {
  std::vector<algo::cplx> x(n);
  const double tones[3] = {50.0, 120.0, 333.0};
  for (std::size_t t = 0; t < n; ++t) {
    double v = 0;
    for (double f : tones) {
      v += std::sin(2.0 * std::numbers::pi * f * double(t) / double(n));
    }
    v += 1.5 * (rng.uniform() - 0.5);  // broadband noise
    x[t] = algo::cplx(v, 0.0);
  }
  return x;
}

double energy(const std::vector<algo::cplx>& x) {
  double e = 0;
  for (const auto& v : x) e += std::norm(v);
  return e;
}

template <class Exec, class Ref>
void denoise(Exec& ex, Ref sig) {
  const std::size_t n = sig.size();
  algo::mo_fft(ex, sig);
  // Keep only coefficients above the noise floor; CGC pass.
  const double threshold = 0.25 * double(n);
  ex.cgc_pfor_each(0, n, 2, [&](std::uint64_t f) {
    if (std::abs(sig.load(f)) < threshold) {
      sig.store(f, algo::cplx(0.0, 0.0));
    }
  });
  algo::mo_ifft(ex, sig);
}

}  // namespace

int main() {
  const std::size_t n = 1 << 14;
  util::Xoshiro256 rng(7);
  const std::vector<algo::cplx> noisy = make_signal(n, rng);

  // Clean reference (no noise) for SNR computation.
  util::Xoshiro256 zero_rng(7);
  std::vector<algo::cplx> clean(n);
  {
    const double tones[3] = {50.0, 120.0, 333.0};
    for (std::size_t t = 0; t < n; ++t) {
      double v = 0;
      for (double f : tones) {
        v += std::sin(2.0 * std::numbers::pi * f * double(t) / double(n));
      }
      clean[t] = algo::cplx(v, 0.0);
    }
  }
  auto snr_db = [&](const std::vector<algo::cplx>& x) {
    double sig = 0, err = 0;
    for (std::size_t t = 0; t < n; ++t) {
      sig += std::norm(clean[t]);
      err += std::norm(x[t] - clean[t]);
    }
    return 10.0 * std::log10(sig / err);
  };

  std::cout << "Spectral filter on " << n << " samples\n";
  std::cout << "input SNR:    " << snr_db(noisy) << " dB\n";

  // --- HM simulator run: correctness + cache metrics. ---
  const hm::MachineConfig machine = hm::MachineConfig::shared_l2(4);
  sched::SimExecutor sim(machine);
  auto buf = sim.make_buf<algo::cplx>(n);
  buf.raw() = noisy;
  const auto m = sim.run(6 * n, [&] { denoise(sim, buf.ref()); });
  std::cout << "filtered SNR: " << snr_db(buf.raw()) << " dB\n";
  std::cout << "HM metrics (" << machine.describe() << "):\n";
  std::cout << "  work " << m.work << ", span " << m.span << ", L1 misses "
            << m.level_max_misses[0] << ", L2 misses "
            << m.level_max_misses[1] << "\n";
  std::cout << "  signal energy preserved: "
            << energy(buf.raw()) / energy(noisy) << "\n";

  // --- Native run (same template, real threads). ---
  sched::NativeExecutor nat(4);
  auto nbuf = nat.make_buf<algo::cplx>(n);
  nbuf.raw() = noisy;
  denoise(nat, nbuf.ref());
  std::cout << "native filtered SNR (" << nat.threads()
            << " threads): " << snr_db(nbuf.raw()) << " dB\n";
  return 0;
}
