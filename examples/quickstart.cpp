// Quickstart: the 60-second tour of the library.
//
//   1. Describe an HM machine (or pick a preset).
//   2. Run a multicore-oblivious algorithm on the deterministic simulator
//      and read off the paper's metrics (work, span, per-level misses).
//   3. Run the *same* algorithm template on real threads.
//
// Build & run:  ./build/examples/example_quickstart
#include <algorithm>
#include <chrono>
#include <iostream>

#include "algo/sort.hpp"
#include "hm/config.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

int main() {
  using namespace obliv;

  // --- 1. An HM machine: 8 cores, private L1s, one shared L2. ---
  const hm::MachineConfig machine = hm::MachineConfig::shared_l2(8);
  std::cout << "Simulating: " << machine.describe() << "\n\n";

  // --- 2. SPMS sort on the simulator: exact HM-model metrics. ---
  const std::size_t n = 1 << 16;
  sched::SimExecutor sim(machine);
  auto buf = sim.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(42);
  for (auto& v : buf.raw()) v = rng();

  // The algorithm itself never sees machine parameters -- only the
  // executor does.  The space bound (4n) is the only hint it supplies.
  const sched::RunMetrics m = sim.run(4 * n, [&] {
    algo::spms_sort(sim, buf.ref());
  });

  std::cout << "SPMS sort of " << n << " keys (multicore-oblivious):\n";
  std::cout << "  work             = " << m.work << " ops\n";
  std::cout << "  span             = " << m.span << " (critical path)\n";
  std::cout << "  T_p (p=8, Brent) = " << m.parallel_steps(8) << "\n";
  for (std::uint32_t lvl = 1; lvl <= machine.cache_levels(); ++lvl) {
    std::cout << "  L" << lvl << " max misses    = "
              << m.level_max_misses[lvl - 1] << "\n";
  }
  std::cout << "  sorted correctly = "
            << std::is_sorted(buf.raw().begin(), buf.raw().end()) << "\n\n";

  // --- 3. Same template, real threads. ---
  sched::NativeExecutor nat(4);
  auto nbuf = nat.make_buf<std::uint64_t>(1 << 20);
  for (auto& v : nbuf.raw()) v = rng();
  const auto t0 = std::chrono::steady_clock::now();
  algo::spms_sort(nat, nbuf.ref());
  const auto t1 = std::chrono::steady_clock::now();
  std::cout << "Native run: sorted " << nbuf.size() << " keys on "
            << nat.threads() << " threads in "
            << std::chrono::duration<double, std::milli>(t1 - t0).count()
            << " ms (sorted = "
            << std::is_sorted(nbuf.raw().begin(), nbuf.raw().end())
            << ")\n";
  return 0;
}
