// Quickstart: the 60-second tour of the library.
//
//   1. Describe an HM machine (or pick a preset).
//   2. Run a multicore-oblivious algorithm on the deterministic simulator
//      and read off the paper's metrics (work, span, per-level misses).
//   3. Run the *same* algorithm template on real threads.
//   4. Re-run with the obs tracer attached and export a Chrome trace
//      (open quickstart_trace.json in chrome://tracing or
//      https://ui.perfetto.dev to see every anchoring decision and miss).
//      `--trace-out=<path>` or OBLIV_TRACE_OUT overrides the path -- the
//      same contract every bench binary honors.
//
// Build & run:  ./build/examples/example_quickstart
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>

#include "algo/sort.hpp"
#include "algo/transpose.hpp"
#include "hm/config.hpp"
#include "obs/trace.hpp"
#include "sched/native_executor.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace obliv;

  // --- 1. An HM machine: 8 cores, private L1s, one shared L2. ---
  const hm::MachineConfig machine = hm::MachineConfig::shared_l2(8);
  std::cout << "Simulating: " << machine.describe() << "\n\n";

  // --- 2. SPMS sort on the simulator: exact HM-model metrics. ---
  const std::size_t n = 1 << 16;
  sched::SimExecutor sim(machine);
  auto buf = sim.make_buf<std::uint64_t>(n);
  util::Xoshiro256 rng(42);
  for (auto& v : buf.raw()) v = rng();

  // The algorithm itself never sees machine parameters -- only the
  // executor does.  The space bound (4n) is the only hint it supplies.
  const sched::RunMetrics m = sim.run(4 * n, [&] {
    algo::spms_sort(sim, buf.ref());
  });

  std::cout << "SPMS sort of " << n << " keys (multicore-oblivious):\n";
  std::cout << "  work             = " << m.work << " ops\n";
  std::cout << "  span             = " << m.span << " (critical path)\n";
  std::cout << "  T_p (p=8, Brent) = " << m.parallel_steps(8) << "\n";
  for (std::uint32_t lvl = 1; lvl <= machine.cache_levels(); ++lvl) {
    std::cout << "  L" << lvl << " max misses    = "
              << m.level_max_misses[lvl - 1] << "\n";
  }
  std::cout << "  sorted correctly = "
            << std::is_sorted(buf.raw().begin(), buf.raw().end()) << "\n\n";

  // --- 3. Same template, real threads. ---
  sched::NativeExecutor nat(4);
  auto nbuf = nat.make_buf<std::uint64_t>(1 << 20);
  for (auto& v : nbuf.raw()) v = rng();
  const auto t0 = std::chrono::steady_clock::now();
  algo::spms_sort(nat, nbuf.ref());
  const auto t1 = std::chrono::steady_clock::now();
  std::cout << "Native run: sorted " << nbuf.size() << " keys on "
            << nat.threads() << " threads in "
            << std::chrono::duration<double, std::milli>(t1 - t0).count()
            << " ms (sorted = "
            << std::is_sorted(nbuf.raw().begin(), nbuf.raw().end())
            << ")\n\n";

  // --- 4. Trace a small run and export it for chrome://tracing. ---
  // A small n keeps every event inside the tracer's ring (no drops), so
  // the exported JSON shows the complete schedule: hint dispatches, SB/CGC
  // anchoring decisions (which cache and why), per-task extents, and every
  // cache miss attributed to the task that caused it.
  obs::Tracer tracer;
  sim.set_tracer(&tracer);
  const std::size_t tn = 1 << 10;
  auto tbuf = sim.make_buf<std::uint64_t>(tn);
  for (auto& v : tbuf.raw()) v = rng();
  sim.run(4 * tn, [&] { algo::spms_sort(sim, tbuf.ref()); });
  // A recursive transposition in the same trace: its quadrant forks are
  // plain SB tasks, so the timeline also shows sb-fit anchoring (smallest
  // cache the task's space bound fits, least-loaded tie-break).
  const std::size_t side = 64;
  auto ta = sim.make_buf<double>(side * side);
  auto tout = sim.make_buf<double>(side * side);
  for (auto& v : ta.raw()) v = rng.uniform();
  sim.run(3 * side * side, [&] {
    algo::recursive_transpose(sim, ta.ref(), tout.ref(), side);
  });
  sim.set_tracer(nullptr);
  const std::string trace_path =
      obs::resolve_trace_out(argc, argv, "quickstart_trace.json");
  if (obs::write_chrome_trace(trace_path, tracer)) {
    std::cout << "Trace: wrote " << trace_path << " ("
              << tracer.events_pushed() << " events, "
              << tracer.events_dropped()
              << " dropped).  Open it in chrome://tracing or "
                 "https://ui.perfetto.dev\n";
  }
  return 0;
}
