// Example: all-pairs shortest paths on a road grid via I-GEP.
//
// A city grid (k x k intersections, random segment travel times, a few
// closed roads) is solved with Floyd-Warshall expressed in the Gaussian
// Elimination Paradigm (Figure 5) and executed by I-GEP under the SB
// scheduler (Theorem 5) -- the schedule exploits every cache level without
// knowing any cache parameter.
//
// Build & run:  ./build/examples/example_apsp_roadgrid
#include <iomanip>
#include <iostream>
#include <vector>

#include "algo/gep.hpp"
#include "hm/config.hpp"
#include "sched/sim_executor.hpp"
#include "util/rng.hpp"

using namespace obliv;

int main() {
  // 8x8 intersections padded to n = 64 (power of two for I-GEP).
  const std::uint64_t k = 8, n = 64;
  const double kInf = 1e17;
  util::Xoshiro256 rng(11);

  std::vector<double> dist(n * n, kInf);
  for (std::uint64_t v = 0; v < n; ++v) dist[v * n + v] = 0;
  auto connect = [&](std::uint64_t a, std::uint64_t b) {
    const double minutes = 2.0 + 6.0 * rng.uniform();
    dist[a * n + b] = std::min(dist[a * n + b], minutes);
    dist[b * n + a] = std::min(dist[b * n + a], minutes);
  };
  for (std::uint64_t r = 0; r < k; ++r) {
    for (std::uint64_t c = 0; c < k; ++c) {
      const std::uint64_t u = r * k + c;
      // Close ~10% of road segments.
      if (c + 1 < k && rng.uniform() > 0.1) connect(u, u + 1);
      if (r + 1 < k && rng.uniform() > 0.1) connect(u, u + k);
    }
  }

  const hm::MachineConfig machine = hm::MachineConfig::three_level(4, 4);
  sched::SimExecutor sim(machine);
  auto buf = sim.make_buf<double>(n * n);
  buf.raw() = dist;
  using Mat = sched::MatView<sched::SimRef<double>>;
  const auto m = sim.run(n * n, [&] {
    algo::igep<algo::FloydWarshallInstance>(sim, Mat::full(buf.ref(), n, n));
  });

  std::cout << "APSP on an " << k << "x" << k
            << " road grid via I-GEP (SB-scheduled)\n";
  std::cout << "machine: " << machine.describe() << "\n";
  std::cout << "work " << m.work << ", span " << m.span << ", T_16 = "
            << m.parallel_steps(machine.cores()) << ", L1/L2/L3 misses "
            << m.level_max_misses[0] << "/" << m.level_max_misses[1] << "/"
            << m.level_max_misses[2] << "\n\n";

  std::cout << "travel times from the NW corner (minutes):\n";
  for (std::uint64_t r = 0; r < k; ++r) {
    for (std::uint64_t c = 0; c < k; ++c) {
      const double d = buf.raw()[0 * n + (r * k + c)];
      if (d >= kInf) {
        std::cout << "   x  ";
      } else {
        std::cout << std::setw(5) << std::fixed << std::setprecision(1) << d
                  << " ";
      }
    }
    std::cout << "\n";
  }

  // Sanity: triangle inequality on a sample of triples.
  std::uint64_t violations = 0;
  for (int t = 0; t < 10000; ++t) {
    const std::uint64_t a = rng.below(k * k), b = rng.below(k * k),
                        c = rng.below(k * k);
    if (buf.raw()[a * n + c] >
        buf.raw()[a * n + b] + buf.raw()[b * n + c] + 1e-9) {
      ++violations;
    }
  }
  std::cout << "\ntriangle-inequality violations in 10000 samples: "
            << violations << "\n";
  return violations == 0 ? 0 : 1;
}
