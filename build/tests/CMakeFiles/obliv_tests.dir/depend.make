# Empty dependencies file for obliv_tests.
# This may be replaced when dependencies are built.
