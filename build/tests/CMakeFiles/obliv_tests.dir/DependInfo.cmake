
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bits.cpp" "tests/CMakeFiles/obliv_tests.dir/test_bits.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_bits.cpp.o.d"
  "/root/repo/tests/test_cache_sim.cpp" "tests/CMakeFiles/obliv_tests.dir/test_cache_sim.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_cache_sim.cpp.o.d"
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/obliv_tests.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_fft.cpp.o.d"
  "/root/repo/tests/test_gep.cpp" "tests/CMakeFiles/obliv_tests.dir/test_gep.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_gep.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/obliv_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_hm_config.cpp" "tests/CMakeFiles/obliv_tests.dir/test_hm_config.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_hm_config.cpp.o.d"
  "/root/repo/tests/test_listrank.cpp" "tests/CMakeFiles/obliv_tests.dir/test_listrank.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_listrank.cpp.o.d"
  "/root/repo/tests/test_native_executor.cpp" "tests/CMakeFiles/obliv_tests.dir/test_native_executor.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_native_executor.cpp.o.d"
  "/root/repo/tests/test_no_algorithms.cpp" "tests/CMakeFiles/obliv_tests.dir/test_no_algorithms.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_no_algorithms.cpp.o.d"
  "/root/repo/tests/test_no_executor.cpp" "tests/CMakeFiles/obliv_tests.dir/test_no_executor.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_no_executor.cpp.o.d"
  "/root/repo/tests/test_no_internals.cpp" "tests/CMakeFiles/obliv_tests.dir/test_no_internals.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_no_internals.cpp.o.d"
  "/root/repo/tests/test_no_machine.cpp" "tests/CMakeFiles/obliv_tests.dir/test_no_machine.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_no_machine.cpp.o.d"
  "/root/repo/tests/test_obliviousness.cpp" "tests/CMakeFiles/obliv_tests.dir/test_obliviousness.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_obliviousness.cpp.o.d"
  "/root/repo/tests/test_scan.cpp" "tests/CMakeFiles/obliv_tests.dir/test_scan.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_scan.cpp.o.d"
  "/root/repo/tests/test_sim_executor.cpp" "tests/CMakeFiles/obliv_tests.dir/test_sim_executor.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_sim_executor.cpp.o.d"
  "/root/repo/tests/test_sort.cpp" "tests/CMakeFiles/obliv_tests.dir/test_sort.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_sort.cpp.o.d"
  "/root/repo/tests/test_spmdv.cpp" "tests/CMakeFiles/obliv_tests.dir/test_spmdv.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_spmdv.cpp.o.d"
  "/root/repo/tests/test_transpose.cpp" "tests/CMakeFiles/obliv_tests.dir/test_transpose.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_transpose.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/obliv_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_views.cpp" "tests/CMakeFiles/obliv_tests.dir/test_views.cpp.o" "gcc" "tests/CMakeFiles/obliv_tests.dir/test_views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/obliv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
