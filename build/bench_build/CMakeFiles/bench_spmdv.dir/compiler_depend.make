# Empty compiler generated dependencies file for bench_spmdv.
# This may be replaced when dependencies are built.
