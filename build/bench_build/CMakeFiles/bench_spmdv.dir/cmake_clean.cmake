file(REMOVE_RECURSE
  "../bench/bench_spmdv"
  "../bench/bench_spmdv.pdb"
  "CMakeFiles/bench_spmdv.dir/bench_spmdv.cpp.o"
  "CMakeFiles/bench_spmdv.dir/bench_spmdv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spmdv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
