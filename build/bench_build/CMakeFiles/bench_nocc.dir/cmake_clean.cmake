file(REMOVE_RECURSE
  "../bench/bench_nocc"
  "../bench/bench_nocc.pdb"
  "CMakeFiles/bench_nocc.dir/bench_nocc.cpp.o"
  "CMakeFiles/bench_nocc.dir/bench_nocc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nocc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
