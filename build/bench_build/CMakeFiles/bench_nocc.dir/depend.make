# Empty dependencies file for bench_nocc.
# This may be replaced when dependencies are built.
