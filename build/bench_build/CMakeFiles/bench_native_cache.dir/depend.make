# Empty dependencies file for bench_native_cache.
# This may be replaced when dependencies are built.
