file(REMOVE_RECURSE
  "../bench/bench_native_cache"
  "../bench/bench_native_cache.pdb"
  "CMakeFiles/bench_native_cache.dir/bench_native_cache.cpp.o"
  "CMakeFiles/bench_native_cache.dir/bench_native_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
