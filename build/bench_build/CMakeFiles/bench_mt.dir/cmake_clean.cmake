file(REMOVE_RECURSE
  "../bench/bench_mt"
  "../bench/bench_mt.pdb"
  "CMakeFiles/bench_mt.dir/bench_mt.cpp.o"
  "CMakeFiles/bench_mt.dir/bench_mt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
