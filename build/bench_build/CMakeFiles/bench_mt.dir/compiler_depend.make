# Empty compiler generated dependencies file for bench_mt.
# This may be replaced when dependencies are built.
