file(REMOVE_RECURSE
  "../bench/bench_listrank"
  "../bench/bench_listrank.pdb"
  "CMakeFiles/bench_listrank.dir/bench_listrank.cpp.o"
  "CMakeFiles/bench_listrank.dir/bench_listrank.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listrank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
