# Empty compiler generated dependencies file for bench_listrank.
# This may be replaced when dependencies are built.
