file(REMOVE_RECURSE
  "../bench/bench_gep"
  "../bench/bench_gep.pdb"
  "CMakeFiles/bench_gep.dir/bench_gep.cpp.o"
  "CMakeFiles/bench_gep.dir/bench_gep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
