# Empty dependencies file for bench_gep.
# This may be replaced when dependencies are built.
