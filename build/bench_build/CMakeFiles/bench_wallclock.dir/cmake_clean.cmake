file(REMOVE_RECURSE
  "../bench/bench_wallclock"
  "../bench/bench_wallclock.pdb"
  "CMakeFiles/bench_wallclock.dir/bench_wallclock.cpp.o"
  "CMakeFiles/bench_wallclock.dir/bench_wallclock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wallclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
