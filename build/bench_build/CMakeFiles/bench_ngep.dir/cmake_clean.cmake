file(REMOVE_RECURSE
  "../bench/bench_ngep"
  "../bench/bench_ngep.pdb"
  "CMakeFiles/bench_ngep.dir/bench_ngep.cpp.o"
  "CMakeFiles/bench_ngep.dir/bench_ngep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ngep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
