# Empty compiler generated dependencies file for bench_ngep.
# This may be replaced when dependencies are built.
