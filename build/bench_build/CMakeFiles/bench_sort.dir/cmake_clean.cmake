file(REMOVE_RECURSE
  "../bench/bench_sort"
  "../bench/bench_sort.pdb"
  "CMakeFiles/bench_sort.dir/bench_sort.cpp.o"
  "CMakeFiles/bench_sort.dir/bench_sort.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
