# Empty dependencies file for bench_sort.
# This may be replaced when dependencies are built.
