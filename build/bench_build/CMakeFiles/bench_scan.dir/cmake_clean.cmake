file(REMOVE_RECURSE
  "../bench/bench_scan"
  "../bench/bench_scan.pdb"
  "CMakeFiles/bench_scan.dir/bench_scan.cpp.o"
  "CMakeFiles/bench_scan.dir/bench_scan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
