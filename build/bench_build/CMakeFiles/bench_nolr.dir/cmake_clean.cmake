file(REMOVE_RECURSE
  "../bench/bench_nolr"
  "../bench/bench_nolr.pdb"
  "CMakeFiles/bench_nolr.dir/bench_nolr.cpp.o"
  "CMakeFiles/bench_nolr.dir/bench_nolr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nolr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
