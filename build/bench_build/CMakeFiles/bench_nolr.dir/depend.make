# Empty dependencies file for bench_nolr.
# This may be replaced when dependencies are built.
