file(REMOVE_RECURSE
  "../bench/bench_cc"
  "../bench/bench_cc.pdb"
  "CMakeFiles/bench_cc.dir/bench_cc.cpp.o"
  "CMakeFiles/bench_cc.dir/bench_cc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
