file(REMOVE_RECURSE
  "libobliv.a"
)
