
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hm/cache_sim.cpp" "src/CMakeFiles/obliv.dir/hm/cache_sim.cpp.o" "gcc" "src/CMakeFiles/obliv.dir/hm/cache_sim.cpp.o.d"
  "/root/repo/src/hm/config.cpp" "src/CMakeFiles/obliv.dir/hm/config.cpp.o" "gcc" "src/CMakeFiles/obliv.dir/hm/config.cpp.o.d"
  "/root/repo/src/no/machine.cpp" "src/CMakeFiles/obliv.dir/no/machine.cpp.o" "gcc" "src/CMakeFiles/obliv.dir/no/machine.cpp.o.d"
  "/root/repo/src/sched/native_executor.cpp" "src/CMakeFiles/obliv.dir/sched/native_executor.cpp.o" "gcc" "src/CMakeFiles/obliv.dir/sched/native_executor.cpp.o.d"
  "/root/repo/src/sched/sim_executor.cpp" "src/CMakeFiles/obliv.dir/sched/sim_executor.cpp.o" "gcc" "src/CMakeFiles/obliv.dir/sched/sim_executor.cpp.o.d"
  "/root/repo/src/util/perf_counters.cpp" "src/CMakeFiles/obliv.dir/util/perf_counters.cpp.o" "gcc" "src/CMakeFiles/obliv.dir/util/perf_counters.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/obliv.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/obliv.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/obliv.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/obliv.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
