# Empty compiler generated dependencies file for obliv.
# This may be replaced when dependencies are built.
