file(REMOVE_RECURSE
  "CMakeFiles/obliv.dir/hm/cache_sim.cpp.o"
  "CMakeFiles/obliv.dir/hm/cache_sim.cpp.o.d"
  "CMakeFiles/obliv.dir/hm/config.cpp.o"
  "CMakeFiles/obliv.dir/hm/config.cpp.o.d"
  "CMakeFiles/obliv.dir/no/machine.cpp.o"
  "CMakeFiles/obliv.dir/no/machine.cpp.o.d"
  "CMakeFiles/obliv.dir/sched/native_executor.cpp.o"
  "CMakeFiles/obliv.dir/sched/native_executor.cpp.o.d"
  "CMakeFiles/obliv.dir/sched/sim_executor.cpp.o"
  "CMakeFiles/obliv.dir/sched/sim_executor.cpp.o.d"
  "CMakeFiles/obliv.dir/util/perf_counters.cpp.o"
  "CMakeFiles/obliv.dir/util/perf_counters.cpp.o.d"
  "CMakeFiles/obliv.dir/util/stats.cpp.o"
  "CMakeFiles/obliv.dir/util/stats.cpp.o.d"
  "CMakeFiles/obliv.dir/util/table.cpp.o"
  "CMakeFiles/obliv.dir/util/table.cpp.o.d"
  "libobliv.a"
  "libobliv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obliv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
