# Empty dependencies file for example_spectral_filter.
# This may be replaced when dependencies are built.
