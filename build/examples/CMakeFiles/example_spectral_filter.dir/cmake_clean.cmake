file(REMOVE_RECURSE
  "CMakeFiles/example_spectral_filter.dir/spectral_filter.cpp.o"
  "CMakeFiles/example_spectral_filter.dir/spectral_filter.cpp.o.d"
  "example_spectral_filter"
  "example_spectral_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spectral_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
