# Empty compiler generated dependencies file for example_apsp_roadgrid.
# This may be replaced when dependencies are built.
