file(REMOVE_RECURSE
  "CMakeFiles/example_apsp_roadgrid.dir/apsp_roadgrid.cpp.o"
  "CMakeFiles/example_apsp_roadgrid.dir/apsp_roadgrid.cpp.o.d"
  "example_apsp_roadgrid"
  "example_apsp_roadgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_apsp_roadgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
