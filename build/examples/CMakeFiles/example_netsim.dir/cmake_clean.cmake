file(REMOVE_RECURSE
  "CMakeFiles/example_netsim.dir/netsim.cpp.o"
  "CMakeFiles/example_netsim.dir/netsim.cpp.o.d"
  "example_netsim"
  "example_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
