# Empty dependencies file for example_netsim.
# This may be replaced when dependencies are built.
