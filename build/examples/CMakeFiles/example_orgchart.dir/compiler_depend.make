# Empty compiler generated dependencies file for example_orgchart.
# This may be replaced when dependencies are built.
