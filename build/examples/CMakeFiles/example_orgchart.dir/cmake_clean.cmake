file(REMOVE_RECURSE
  "CMakeFiles/example_orgchart.dir/orgchart.cpp.o"
  "CMakeFiles/example_orgchart.dir/orgchart.cpp.o.d"
  "example_orgchart"
  "example_orgchart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_orgchart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
