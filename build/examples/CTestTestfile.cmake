# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_apsp_roadgrid "/root/repo/build/examples/example_apsp_roadgrid")
set_tests_properties(example_apsp_roadgrid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_netsim "/root/repo/build/examples/example_netsim")
set_tests_properties(example_netsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_orgchart "/root/repo/build/examples/example_orgchart")
set_tests_properties(example_orgchart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectral_filter "/root/repo/build/examples/example_spectral_filter")
set_tests_properties(example_spectral_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
